// End-to-end simulation driver: wires trace -> data server -> memory
// controller -> chips, runs to completion, and collects the metrics the
// paper reports (energy breakdown, savings, client response time,
// utilization factor).
//
// Also home of the CP-Limit calibration: the paper's DMA-TA takes the
// per-request slowdown mu, derived offline from a client-perceived
// response-time degradation limit. `Calibrate` measures the baseline
// response time R0 and the average memory-transfer time per client
// request M0; mu(cp) = cp * R0 / M0 then converts a client-perceived
// limit into the controller parameter (Section 5.1).
#ifndef DMASIM_SERVER_SIMULATION_DRIVER_H_
#define DMASIM_SERVER_SIMULATION_DRIVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/memory_controller.h"
#include "mem/power_policy.h"
#include "obs/metrics.h"
#include "obs/obs_config.h"
#include "server/data_server.h"
#include "sim/simulator.h"
#include "stats/energy.h"
#include "trace/trace.h"
#include "trace/workloads.h"

namespace dmasim {

enum class PolicyKind : int {
  kDynamic = 0,     // Lebeck et al. dynamic thresholds (the baseline).
  kStaticStandby,
  kStaticNap,
  kStaticPowerdown,
  kAlwaysActive,
};

std::string PolicyKindName(PolicyKind kind);
// Builds the policy for `kind` on the RDRAM state chain.
std::unique_ptr<LowPowerPolicy> MakePolicy(PolicyKind kind,
                                           const DynamicThresholdConfig&
                                               thresholds);
// Model-aware overload: kDynamic walks `memory.chip_model`'s own state
// chain (a DDR4 chip steps through its power-down cascade, not the
// RDRAM one); static policies targeting states the model lacks abort.
std::unique_ptr<LowPowerPolicy> MakePolicy(PolicyKind kind,
                                           const DynamicThresholdConfig&
                                               thresholds,
                                           const MemorySystemConfig& memory);

struct SimulationOptions {
  MemorySystemConfig memory;
  ServerConfig server;
  PolicyKind policy = PolicyKind::kDynamic;
  DynamicThresholdConfig thresholds;
  // Extra simulated time after the last trace record, letting in-flight
  // transfers, gated requests, and migrations finish.
  Tick drain = 10 * kMillisecond;
  // Worker threads for the sharded engine (sim/sharded_engine.h). A
  // single-controller run is one shard — one memory-controller domain —
  // so any value routes through the engine's windowed execution with
  // identical results (the determinism suite pins this); real
  // parallelism needs the multi-domain fleet driver. 1 = the plain
  // serial kernel.
  int sim_threads = 1;

  // --- Runtime invariant auditing (src/audit/) ---------------------------
  // Active only when the library is compiled with DMASIM_AUDIT_LEVEL >= 1;
  // the effective level is min(audit_level, DMASIM_AUDIT_LEVEL).
  // 0 = off, 1 = end-of-run registry pass, 2 = + periodic passes and
  // transition-time validation.
  int audit_level = 0;
  Tick audit_period = kMillisecond;  // Cadence of level-2 periodic passes.
  // Abort on a violated invariant (false collects failures into
  // SimulationResults::audit_failures instead — used by tests).
  bool audit_abort = true;
  // Model the power-state legality invariant judges transitions against;
  // null means the run's own chip model (the seeded-fault regression
  // test points this at the pristine reference while corrupting the
  // model the chips actually run).
  const ChipPowerModel* audit_reference_model = nullptr;

  // --- Observability (src/obs/) ------------------------------------------
  // Active only when the library is compiled with DMASIM_OBS >= 1; the
  // effective level is min(obs_level, DMASIM_OBS). 0 = off, 1 = metrics
  // registry, 2 = + structured event trace.
  int obs_level = 0;
  // When non-empty (and the effective level is >= 2), the event trace is
  // written to this path as Chrome/Perfetto trace_event JSON.
  std::string obs_trace_path;
  // Event-trace buffer bound; events past it are dropped and counted in
  // SimulationResults::obs_dropped_events.
  std::size_t obs_trace_capacity = std::size_t{1} << 20;
};

// Access-monitor outcome of one run (zero/default unless the run was
// monitored).
struct MonitorSummary {
  bool enabled = false;
  int regions = 0;  // Final region count.
  std::uint64_t probes = 0;
  std::uint64_t observations = 0;
  std::uint64_t splits = 0;
  std::uint64_t merges = 0;
  std::uint64_t aggregations = 0;
  std::uint64_t scheme_matches = 0;
  std::uint64_t demotions_requested = 0;
  std::uint64_t demotions_applied = 0;
  // Simulated monitoring cost as a fraction of the run's duration.
  double overhead_fraction = 0.0;
  // Latest estimated-vs-oracle hotness error (total variation; -1 when
  // never computed, i.e. no layout interval ran).
  double hotness_error = -1.0;
};

struct SimulationResults {
  std::string workload;
  std::string scheme;
  Tick duration = 0;

  EnergyBreakdown energy;
  double utilization_factor = 0.0;
  RunningMean client_response;   // Ticks.
  RunningMean chunk_service;     // Ticks.
  RunningMean transfer_latency;  // Ticks.

  ControllerStats controller;
  ServerStats server;

  std::uint64_t gated_requests = 0;
  std::uint64_t releases_by_quorum = 0;
  std::uint64_t releases_by_slack = 0;
  std::int64_t max_gated_buffer_bytes = 0;
  std::uint64_t executed_events = 0;  // Logical (coalescing-invariant).
  std::uint64_t stepped_events = 0;   // Actual queue pops.
  double hottest_chip_share = 0.0;
  // Calendar-queue internals of the run's kernel (bucket loads,
  // cascades, overflow refills, occupancy peaks).
  Simulator::CalendarStats calendar;

  // Invariant auditor outcome (zero unless the run was audited).
  std::uint64_t audit_checks = 0;
  std::uint64_t audit_failures = 0;

  // Observability outcome (empty/zero unless the run was observed).
  std::vector<MetricSample> metrics;
  std::uint64_t obs_events = 0;
  std::uint64_t obs_dropped_events = 0;

  // Access-monitor outcome (disabled unless the run was monitored).
  MonitorSummary monitor;

  // Fractional energy saving relative to `baseline` (positive = better).
  double EnergySavingsVs(const SimulationResults& baseline) const;
  // Fractional client-perceived response-time degradation vs `baseline`.
  double ResponseDegradationVs(const SimulationResults& baseline) const;
  // Average memory time spent on DMA transfers per client request.
  double MemoryTimePerRequest() const;
};

// Human-readable scheme label for a memory config ("baseline", "DMA-TA",
// "DMA-TA-PL(2)").
std::string SchemeName(const MemorySystemConfig& config);

// Fills the per-system metric block of `results` — duration, energy,
// latencies, controller/server/monitor statistics, kernel counters —
// from one simulated system's components. Shared by RunTrace and the
// fleet driver (which calls it once per domain).
void CollectRunResults(Simulator* simulator, MemoryController* controller,
                       DataServer* server, SimulationResults* results);

// Runs `trace` (with the given forced miss ratio, < 0 for cache-driven
// misses) against `options` for `duration` + drain.
SimulationResults RunTrace(const Trace& trace, double miss_ratio,
                           Tick duration, const SimulationOptions& options,
                           const std::string& workload_name);

// Generates the workload and runs it.
SimulationResults RunWorkload(const WorkloadSpec& spec,
                              const SimulationOptions& options);

// CP-Limit -> mu transformation (calibrated on a baseline run).
struct CpCalibration {
  double r0 = 0.0;  // Baseline average client response time (ticks).
  double m0 = 0.0;  // Average DMA memory time per client request (ticks).

  double MuFor(double cp_limit) const {
    return m0 > 0.0 ? cp_limit * r0 / m0 : 0.0;
  }
};

CpCalibration Calibrate(const SimulationResults& baseline);

}  // namespace dmasim

#endif  // DMASIM_SERVER_SIMULATION_DRIVER_H_
