#include "server/simulation_driver.h"

#include <algorithm>
#include <cstddef>
#include <memory>
#include <utility>

#include "audit/audit_config.h"
#include "exp/thread_pool.h"
#include "sim/sharded_engine.h"
#include "sim/simulator.h"

#if DMASIM_AUDIT_LEVEL >= 1
#include <memory>

#include "audit/simulation_audit.h"
#endif

#if DMASIM_OBS >= 1
#include <memory>

#include "obs/simulation_obs.h"
#endif
#if DMASIM_OBS >= 2
#include "obs/trace_export.h"
#endif

namespace dmasim {

namespace {

// Cursor-based trace feeder: keeps the event queue small even for
// CPU-access heavy database traces. Lives on RunTrace's stack (the
// simulator never outlives the call) so feed events capture one pointer.
struct TraceFeeder {
  Simulator* simulator;
  DataServer* server;
  const Trace* trace;
  std::size_t cursor = 0;

  void Pump() {
    while (cursor < trace->size() &&
           (*trace)[cursor].time <= simulator->Now()) {
      const TraceRecord& record = (*trace)[cursor++];
      switch (record.kind) {
        case TraceEventKind::kClientRead:
          server->ClientRead(record.page, record.bytes);
          break;
        case TraceEventKind::kClientWrite:
          server->ClientWrite(record.page, record.bytes);
          break;
        case TraceEventKind::kCpuAccess:
          server->CpuAccess(record.page, record.bytes);
          break;
      }
    }
    if (cursor < trace->size()) {
      simulator->ScheduleAt((*trace)[cursor].time,
                            [this]() { Pump(); });
    }
  }
};

}  // namespace

std::string PolicyKindName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kDynamic:
      return "dynamic";
    case PolicyKind::kStaticStandby:
      return "static-standby";
    case PolicyKind::kStaticNap:
      return "static-nap";
    case PolicyKind::kStaticPowerdown:
      return "static-powerdown";
    case PolicyKind::kAlwaysActive:
      return "always-active";
  }
  return "?";
}

std::unique_ptr<LowPowerPolicy> MakePolicy(
    PolicyKind kind, const DynamicThresholdConfig& thresholds) {
  switch (kind) {
    case PolicyKind::kDynamic:
      return std::make_unique<DynamicThresholdPolicy>(thresholds);
    case PolicyKind::kStaticStandby:
      return std::make_unique<StaticPolicy>(PowerState::kStandby);
    case PolicyKind::kStaticNap:
      return std::make_unique<StaticPolicy>(PowerState::kNap);
    case PolicyKind::kStaticPowerdown:
      return std::make_unique<StaticPolicy>(PowerState::kPowerdown);
    case PolicyKind::kAlwaysActive:
      return std::make_unique<AlwaysActivePolicy>();
  }
  DMASIM_CHECK_MSG(false, "invalid policy kind");
}

std::unique_ptr<LowPowerPolicy> MakePolicy(PolicyKind kind,
                                           const DynamicThresholdConfig&
                                               thresholds,
                                           const MemorySystemConfig& memory) {
  if (memory.chip_model == ChipModelKind::kRdram ||
      memory.chip_model == ChipModelKind::kRdramCorrected ||
      memory.chip_model == ChipModelKind::kSectored) {
    // The whole family shares the RDRAM 4-state chain, so the classic
    // policies apply unchanged.
    return MakePolicy(kind, thresholds);
  }
  switch (kind) {
    case PolicyKind::kDynamic:
      // dmasim-lint: allow(heap-alloc) -- one-time construction.
      return std::make_unique<ModelChainPolicy>(memory.chip_model,
                                                memory.power, thresholds);
    case PolicyKind::kStaticStandby:
      // DDR4 keeps a precharge-standby state, so static-standby is legal.
      return std::make_unique<StaticPolicy>(PowerState::kStandby);
    case PolicyKind::kAlwaysActive:
      return std::make_unique<AlwaysActivePolicy>();
    case PolicyKind::kStaticNap:
    case PolicyKind::kStaticPowerdown:
      break;  // RDRAM-only states; fall through to the abort.
  }
  DMASIM_CHECK_MSG(false, "policy targets a state this chip model lacks");
}

std::string SchemeName(const MemorySystemConfig& config) {
  std::string name;
  if (!config.dma.ta.enabled) {
    name = "baseline";
  } else if (!config.dma.pl.enabled) {
    name = "DMA-TA";
  } else {
    name = "DMA-TA-PL(" + std::to_string(config.dma.pl.groups) + ")";
  }
  // The suffixes (like the JSON monitor section) appear only when the
  // feature is on, so default-config artifacts stay byte-identical.
  if (config.monitor.enabled) name += "+mon";
  if (config.chip_model != ChipModelKind::kRdram) {
    name += "+" + std::string(ChipModelKindName(config.chip_model));
  }
  return name;
}

void CollectRunResults(Simulator* simulator, MemoryController* controller,
                       DataServer* server, SimulationResults* results) {
  results->duration = simulator->Now();
  results->energy = controller->CollectEnergy();
  results->utilization_factor = controller->UtilizationFactor();
  results->client_response = server->ResponseTime();
  results->chunk_service = controller->ChunkServiceTime();
  results->transfer_latency = controller->TransferLatency();
  results->controller = controller->stats();
  results->server = server->stats();
  results->gated_requests = controller->aligner().TotalGated();
  results->releases_by_quorum = controller->aligner().ReleasedByQuorum();
  results->releases_by_slack = controller->aligner().ReleasedBySlack();
  results->max_gated_buffer_bytes = controller->aligner().MaxBufferedBytes();
  results->executed_events = simulator->ExecutedEvents();
  results->stepped_events = simulator->SteppedEvents();
  results->hottest_chip_share = controller->HottestChipShare();
  results->calendar = simulator->calendar_stats();
  if (controller->monitor() != nullptr) {
    const RegionMonitor& monitor = *controller->monitor();
    results->monitor.enabled = true;
    results->monitor.regions = static_cast<int>(monitor.regions().size());
    results->monitor.probes = monitor.stats().probes;
    results->monitor.observations = monitor.stats().observations;
    results->monitor.splits = monitor.stats().splits;
    results->monitor.merges = monitor.stats().merges;
    results->monitor.aggregations = monitor.stats().aggregations;
    results->monitor.scheme_matches = monitor.stats().scheme_region_matches;
    results->monitor.demotions_requested = monitor.stats().demotions_requested;
    results->monitor.demotions_applied = monitor.stats().demotions_applied;
    results->monitor.overhead_fraction =
        monitor.OverheadFraction(simulator->Now());
    results->monitor.hotness_error = monitor.latest_hotness_error();
  }
}

double SimulationResults::EnergySavingsVs(
    const SimulationResults& baseline) const {
  // Audited raw edge: the savings ratio is dimensionless, so the typed
  // totals drop to raw joules here.
  const double base = baseline.energy.Total().joules();
  return base > 0.0 ? 1.0 - energy.Total().joules() / base : 0.0;
}

double SimulationResults::ResponseDegradationVs(
    const SimulationResults& baseline) const {
  const double base = baseline.client_response.Mean();
  return base > 0.0 ? client_response.Mean() / base - 1.0 : 0.0;
}

double SimulationResults::MemoryTimePerRequest() const {
  const std::uint64_t requests = server.reads + server.writes;
  if (requests == 0) return 0.0;
  return transfer_latency.Sum() / static_cast<double>(requests);
}

SimulationResults RunTrace(const Trace& trace, double miss_ratio,
                           Tick duration, const SimulationOptions& options,
                           const std::string& workload_name) {
  DMASIM_EXPECTS(IsTimeSorted(trace));

  Simulator simulator;
  std::unique_ptr<LowPowerPolicy> policy =
      MakePolicy(options.policy, options.thresholds, options.memory);
  MemoryController controller(&simulator, options.memory, policy.get());
  ServerConfig server_config = options.server;
  server_config.forced_miss_ratio = miss_ratio;
  DataServer server(&simulator, &controller, server_config);

  TraceFeeder feeder{&simulator, &server, &trace};
  if (!trace.empty()) {
    simulator.ScheduleAt(trace[0].time, [&feeder]() { feeder.Pump(); });
  }

#if DMASIM_AUDIT_LEVEL >= 1
  std::unique_ptr<SimulationAudit> audit;
  if (options.audit_level >= 1) {
    SimulationAudit::Options audit_options;
    audit_options.level = std::min(options.audit_level, DMASIM_AUDIT_LEVEL);
    audit_options.period = options.audit_period;
    audit_options.mode = options.audit_abort ? InvariantAuditor::Mode::kAbort
                                             : InvariantAuditor::Mode::kCollect;
    audit_options.reference_model = options.audit_reference_model;
    audit = std::make_unique<SimulationAudit>(&simulator, &controller,
                                              audit_options);
  }
#endif

  // Built before the observer so the obs layer can export the engine's
  // window/mailbox counters. One controller = one shard (one
  // memory-controller domain), so the windowed execution is exactly the
  // serial order; the trailing RunUntil settles the clock at `end` the
  // same way the serial branch does.
  std::unique_ptr<ShardedEngine> engine;
  if (options.sim_threads != 1) {
    ShardedEngine::Options engine_options;
    engine = std::make_unique<ShardedEngine>(engine_options);
    engine->AddShard(&simulator, [](const ShardMessage&) {});
  }

#if DMASIM_OBS >= 1
  std::unique_ptr<SimulationObserver> observer;
  if (options.obs_level >= 1) {
    SimulationObserver::Options obs_options;
    obs_options.level = std::min(options.obs_level, DMASIM_OBS);
    obs_options.trace_capacity = options.obs_trace_capacity;
    obs_options.simulator = &simulator;
    obs_options.engine = engine.get();
    observer = std::make_unique<SimulationObserver>(&controller, &server,
                                                    obs_options);
  }
#endif

  const Tick end = duration + options.drain;
  if (engine != nullptr) {
    ThreadPool pool(options.sim_threads);
    engine->Run(end, &pool);
  }
  simulator.RunUntil(end);

  SimulationResults results;
#if DMASIM_AUDIT_LEVEL >= 1
  if (audit != nullptr) {
    audit->Finish();
    results.audit_checks = audit->auditor().checks_run();
    results.audit_failures = audit->auditor().failures().size();
  }
#endif
  results.workload = workload_name;
  results.scheme = SchemeName(options.memory) + "/" +
                   PolicyKindName(options.policy);
  CollectRunResults(&simulator, &controller, &server, &results);
#if DMASIM_OBS >= 1
  if (observer != nullptr) {
    observer->Finish();
    results.metrics = observer->SnapshotMetrics();
#if DMASIM_OBS >= 2
    if (observer->tracer() != nullptr) {
      results.obs_events = observer->tracer()->size();
      results.obs_dropped_events = observer->tracer()->dropped();
      if (!options.obs_trace_path.empty()) {
        const bool written = WriteChromeTraceFile(
            *observer->tracer(), options.obs_trace_path.c_str());
        DMASIM_CHECK_MSG(written, "failed to write observability trace");
      }
    }
#endif
  }
#endif
  return results;
}

SimulationResults RunWorkload(const WorkloadSpec& spec,
                              const SimulationOptions& options) {
  const Trace trace = GenerateWorkload(spec);
  SimulationOptions effective = options;
  effective.server.request_compute_time = spec.request_compute_time;
  return RunTrace(trace, spec.miss_ratio, spec.duration, effective, spec.name);
}

CpCalibration Calibrate(const SimulationResults& baseline) {
  CpCalibration calibration;
  calibration.r0 = baseline.client_response.Mean();
  calibration.m0 = baseline.MemoryTimePerRequest();
  return calibration;
}

}  // namespace dmasim
