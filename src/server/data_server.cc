#include "server/data_server.h"

#include <utility>

namespace dmasim {

DataServer::DataServer(Simulator* simulator, MemoryController* controller,
                       const ServerConfig& config)
    : simulator_(simulator),
      controller_(controller),
      config_(config),
      cache_(config.cache_pages),
      disks_(simulator, config.disk, config.disks, config.seed ^ 0xd15c),
      network_(config.network),
      rng_(config.seed) {
  DMASIM_EXPECTS(config.forced_miss_ratio <= 1.0);
}

int DataServer::PickBus() {
  // Network adapters and disk HBAs are spread over the I/O buses; spread
  // transfers uniformly (deterministically seeded).
  return static_cast<int>(
      rng_.NextBounded(static_cast<std::uint64_t>(controller_->bus_count())));
}

bool DataServer::IsMiss(std::uint64_t page) {
  if (config_.forced_miss_ratio >= 0.0) {
    cache_.Insert(page);  // Keep the index warm for inspection.
    return rng_.NextDouble() < config_.forced_miss_ratio;
  }
  const bool hit = cache_.Lookup(page);
  if (!hit) cache_.Insert(page);
  return !hit;
}

void DataServer::FinishRequest(Tick arrival, Tick dma_done,
                               std::int64_t reply_bytes,
                               ClientCallback& done) {
  const Tick finish = dma_done + network_.MessageTime(reply_bytes) +
                      config_.request_compute_time;
  response_time_.Add(static_cast<double>(finish - arrival));
#if DMASIM_OBS >= 1
  if (obs_.response_time != nullptr) {
    obs_.response_time->Add(static_cast<double>(finish - arrival));
  }
#endif
#if DMASIM_OBS >= 2
  if (obs_.tracer != nullptr) {
    // Writes acknowledge with an empty reply (reply_bytes == 0).
    obs_.tracer->ClientRequest(arrival, finish, /*is_write=*/reply_bytes == 0,
                               reply_bytes);
  }
#endif
  if (done) done(finish);
}

void DataServer::ClientRead(std::uint64_t page, std::int64_t bytes,
                            ClientCallback done) {
  ++stats_.reads;
  const Tick arrival = simulator_->Now();

  if (!IsMiss(page)) {
    ++stats_.hits;
    // Hit: network DMA straight out of memory.
    controller_->StartDmaTransfer(
        PickBus(), page, bytes, DmaKind::kNetwork,
        [this, arrival, bytes,
         done = std::move(done)](Tick dma_done) mutable {
          FinishRequest(arrival, dma_done, bytes, done);
        });
    return;
  }

  ++stats_.misses;
  // Miss: disk read -> disk DMA into memory -> network DMA out. The
  // continuation is move-only, so each stage hands it to the next with a
  // mutable move-capture.
  disks_.Read(
      page, bytes,
      [this, arrival, page, bytes,
       done = std::move(done)](Tick /*disk_done*/) mutable {
        controller_->StartDmaTransfer(
            PickBus(), page, bytes, DmaKind::kDisk,
            [this, arrival, page, bytes,
             done = std::move(done)](Tick /*loaded*/) mutable {
              controller_->StartDmaTransfer(
                  PickBus(), page, bytes, DmaKind::kNetwork,
                  [this, arrival, bytes,
                   done = std::move(done)](Tick dma_done) mutable {
                    FinishRequest(arrival, dma_done, bytes, done);
                  });
            });
      });
}

void DataServer::ClientWrite(std::uint64_t page, std::int64_t bytes,
                             ClientCallback done) {
  ++stats_.writes;
  const Tick arrival = simulator_->Now();
  if (config_.forced_miss_ratio < 0.0) cache_.Insert(page);

  // Network DMA in; acknowledge the client; write back to disk
  // asynchronously via a disk DMA out of memory.
  controller_->StartDmaTransfer(
      PickBus(), page, bytes, DmaKind::kNetwork,
      [this, arrival, page, bytes,
       done = std::move(done)](Tick dma_done) mutable {
        FinishRequest(arrival, dma_done, /*reply_bytes=*/0, done);
        controller_->StartDmaTransfer(
            PickBus(), page, bytes, DmaKind::kDisk,
            [this, page, bytes](Tick /*drained*/) {
              disks_.Read(page, bytes, {});  // Media write; same service law.
            });
      });
}

void DataServer::CpuAccess(std::uint64_t page, std::int64_t bytes) {
  ++stats_.cpu_accesses;
  controller_->CpuAccess(page, bytes);
}

}  // namespace dmasim
