#include "server/fleet_driver.h"

#include <algorithm>
#include <bit>
#include <cstddef>
#include <deque>
#include <memory>
#include <utility>

#include "audit/audit_config.h"
#include "exp/thread_pool.h"
#include "util/random.h"

#if DMASIM_AUDIT_LEVEL >= 1
#include "audit/shard_audit.h"
#include "audit/simulation_audit.h"
#endif

#include "obs/obs_config.h"
#if DMASIM_OBS >= 1
#include "obs/simulation_obs.h"
#endif

namespace dmasim {

namespace {

// Cross-shard message kinds (ShardMessage::kind).
constexpr std::uint32_t kRemoteReadMsg = 1;   // a=page, b=bytes, c=slot.
constexpr std::uint32_t kRemoteReplyMsg = 2;  // c=slot at the requester.

// Set up before the engine runs, read-only to every worker after.
struct FleetShared {
  DMASIM_SHARED_CONST ShardedEngine* engine = nullptr;
  DMASIM_SHARED_CONST Tick remote_latency = 0;
  DMASIM_SHARED_CONST std::uint64_t stream_count = 0;
  // Per-stream remote-homing probability as a 32-bit threshold.
  DMASIM_SHARED_CONST std::uint64_t remote_threshold = 0;
  DMASIM_SHARED_CONST int domain_count = 0;
  DMASIM_SHARED_CONST std::uint64_t salt = 0;
};

// One memory-controller domain: a complete simulated system around a
// private kernel, plus its side of the remote-read bookkeeping. Lives in
// a deque (Simulator is neither copyable nor movable).
struct FleetDomain {
  FleetDomain(int domain_index, FleetShared* shared_state)
      : index(domain_index), shared(shared_state) {}

  DMASIM_SHARED_CONST int index;
  DMASIM_SHARED_CONST FleetShared* shared;
  // Everything below is the domain's private simulated system — owned
  // by its shard's worker during a window, by the coordinator at
  // barriers (delivery handlers).
  DMASIM_SHARD_LOCAL Simulator simulator;
  DMASIM_SHARD_LOCAL std::unique_ptr<LowPowerPolicy> policy;
  DMASIM_SHARD_LOCAL std::unique_ptr<MemoryController> controller;
  DMASIM_SHARD_LOCAL std::unique_ptr<DataServer> server;
  DMASIM_SHARD_LOCAL Trace trace;
  DMASIM_SHARD_LOCAL std::size_t cursor = 0;

  // Outstanding remote reads this domain issued: slot -> issue time.
  // Slots recycle through the free list in deterministic order.
  DMASIM_SHARD_LOCAL std::vector<Tick> slot_issue_time;
  DMASIM_SHARD_LOCAL std::vector<std::uint32_t> free_slots;

  DMASIM_SHARD_LOCAL std::uint64_t remote_sent = 0;
  DMASIM_SHARD_LOCAL std::uint64_t remote_served = 0;
  DMASIM_SHARD_LOCAL std::uint64_t remote_completed = 0;
  DMASIM_SHARD_LOCAL RunningMean remote_response;
};

// The stream a trace record belongs to: a stable hash of its position in
// the domain's trace, folded onto the per-domain stream space.
std::uint64_t StreamOf(const FleetShared& shared, int domain,
                       std::uint64_t position) {
  std::uint64_t state = shared.salt ^
                        (static_cast<std::uint64_t>(domain) << 40) ^ position;
  return SplitMix64(state) % shared.stream_count;
}

// The domain a (domain, stream) pair is homed on: itself for local
// streams, a stable peer for remote-homed ones.
int HomeOf(const FleetShared& shared, int domain, std::uint64_t stream) {
  std::uint64_t state = shared.salt ^ 0x5eedULL ^
                        (static_cast<std::uint64_t>(domain) << 32) ^ stream;
  const std::uint64_t hash = SplitMix64(state);
  if ((hash & 0xffffffffULL) >= shared.remote_threshold) return domain;
  const std::uint64_t peer =
      (hash >> 32) % static_cast<std::uint64_t>(shared.domain_count - 1);
  return (domain + 1 + static_cast<int>(peer)) % shared.domain_count;
}

// shardcheck: window-context
void ForwardRemoteRead(FleetDomain* domain, int home,
                       const TraceRecord& record) {
  std::uint32_t slot;
  if (!domain->free_slots.empty()) {
    slot = domain->free_slots.back();
    domain->free_slots.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(domain->slot_issue_time.size());
    domain->slot_issue_time.push_back(0);
  }
  const Tick now = domain->simulator.Now();
  domain->slot_issue_time[slot] = now;
  ++domain->remote_sent;
  domain->shared->engine->Send(
      domain->index, home, now + domain->shared->remote_latency,
      kRemoteReadMsg, record.page,
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(record.bytes)),
      slot);
}

// shardcheck: window-context
void FeedRecord(FleetDomain* domain, const TraceRecord& record,
                std::uint64_t position) {
  switch (record.kind) {
    case TraceEventKind::kClientRead: {
      const FleetShared& shared = *domain->shared;
      if (shared.remote_threshold > 0) {
        const std::uint64_t stream = StreamOf(shared, domain->index, position);
        const int home = HomeOf(shared, domain->index, stream);
        if (home != domain->index) {
          ForwardRemoteRead(domain, home, record);
          return;
        }
      }
      domain->server->ClientRead(record.page, record.bytes);
      return;
    }
    case TraceEventKind::kClientWrite:
      domain->server->ClientWrite(record.page, record.bytes);
      return;
    case TraceEventKind::kCpuAccess:
      domain->server->CpuAccess(record.page, record.bytes);
      return;
  }
}

// Cursor-based feeder, the fleet counterpart of RunTrace's TraceFeeder.
// shardcheck: window-context
void PumpDomain(FleetDomain* domain) {
  while (domain->cursor < domain->trace.size() &&
         domain->trace[domain->cursor].time <= domain->simulator.Now()) {
    const std::uint64_t position = domain->cursor;
    const TraceRecord& record = domain->trace[domain->cursor++];
    FeedRecord(domain, record, position);
  }
  if (domain->cursor < domain->trace.size()) {
    domain->simulator.ScheduleAt(domain->trace[domain->cursor].time,
                                 [domain]() { PumpDomain(domain); });
  }
}

// Barrier-time delivery: turns a cross-shard message into an ordinary
// event in the destination domain's kernel.
void HandleMessage(FleetDomain* domain, const ShardMessage& message) {
  if (message.kind == kRemoteReadMsg) {
    const std::uint64_t page = message.a;
    const std::int64_t bytes = static_cast<std::int64_t>(message.b);
    // Reply route: requesting domain in the high word, its slot below.
    const std::uint64_t route =
        (static_cast<std::uint64_t>(message.src) << 32) | message.c;
    domain->simulator.ScheduleAt(
        message.deliver_at, [domain, page, bytes, route]() {
          ++domain->remote_served;
          domain->server->ClientRead(
              page, bytes, [domain, route](Tick finish) {
                const int requester = static_cast<int>(route >> 32);
                domain->shared->engine->Send(
                    domain->index, requester,
                    finish + domain->shared->remote_latency, kRemoteReplyMsg,
                    0, 0, route & 0xffffffffULL);
              });
        });
    return;
  }
  DMASIM_CHECK_EQ(message.kind, kRemoteReplyMsg);
  const std::uint32_t slot = static_cast<std::uint32_t>(message.c);
  domain->simulator.ScheduleAt(message.deliver_at, [domain, slot]() {
    ++domain->remote_completed;
    domain->remote_response.Add(static_cast<double>(
        domain->simulator.Now() - domain->slot_issue_time[slot]));
    domain->free_slots.push_back(slot);
  });
}

void FnvMixU64(std::uint64_t value, std::uint64_t* hash) {
  for (int i = 0; i < 8; ++i) {
    *hash ^= (value >> (8 * i)) & 0xffULL;
    *hash *= 1099511628211ULL;
  }
}

std::uint64_t Bits(double value) {
  return std::bit_cast<std::uint64_t>(value);
}

}  // namespace

std::uint64_t FleetResults::Fingerprint() const {
  std::uint64_t hash = 14695981039346656037ULL;
  FnvMixU64(domains.size(), &hash);
  FnvMixU64(static_cast<std::uint64_t>(duration), &hash);
  for (const FleetDomainResults& domain : domains) {
    const SimulationResults& r = domain.results;
    FnvMixU64(r.executed_events, &hash);
    FnvMixU64(r.stepped_events, &hash);
    for (int bucket = 0; bucket < kEnergyBucketCount; ++bucket) {
      FnvMixU64(Bits(r.energy.Of(static_cast<EnergyBucket>(bucket)).joules()),
                &hash);
    }
    FnvMixU64(r.client_response.Count(), &hash);
    FnvMixU64(Bits(r.client_response.Sum()), &hash);
    FnvMixU64(Bits(r.transfer_latency.Sum()), &hash);
    FnvMixU64(r.controller.transfers_completed, &hash);
    FnvMixU64(r.server.reads, &hash);
    FnvMixU64(r.server.misses, &hash);
    FnvMixU64(r.gated_requests, &hash);
    FnvMixU64(domain.remote_sent, &hash);
    FnvMixU64(domain.remote_served, &hash);
    FnvMixU64(domain.remote_completed, &hash);
    FnvMixU64(domain.remote_response.Count(), &hash);
    FnvMixU64(Bits(domain.remote_response.Sum()), &hash);
  }
  FnvMixU64(engine.windows, &hash);
  FnvMixU64(engine.delivered_messages, &hash);
  return hash;
}

FleetResults RunFleet(const FleetOptions& options) {
  DMASIM_EXPECTS(options.domains >= 1);
  DMASIM_EXPECTS(options.streams_per_domain > 0);
  DMASIM_EXPECTS(options.remote_fraction >= 0.0 &&
                 options.remote_fraction <= 1.0);
  if (options.domains > 1) DMASIM_EXPECTS(options.remote_latency > 0);

  FleetShared shared;
  shared.remote_latency = options.remote_latency;
  shared.stream_count = options.streams_per_domain;
  shared.domain_count = options.domains;
  std::uint64_t salt_state = options.workload.seed;
  shared.salt = SplitMix64(salt_state);
  shared.remote_threshold =
      options.domains > 1
          ? static_cast<std::uint64_t>(options.remote_fraction * 4294967296.0)
          : 0;

  ShardedEngine::Options engine_options;
  engine_options.lookahead = options.remote_latency;
  engine_options.mailbox_capacity = options.mailbox_capacity;
  engine_options.record_deliveries = options.record_deliveries;
  engine_options.record_window_digests = options.record_window_digests;
  engine_options.fault = options.engine_fault;
  engine_options.sched_fuzz_seed = options.sched_fuzz_seed;
#if DMASIM_AUDIT_LEVEL >= 1
  std::unique_ptr<ShardAudit> shard_audit;
  if (options.base.audit_level >= 1) {
    shard_audit = std::make_unique<ShardAudit>(
        options.base.audit_abort ? InvariantAuditor::Mode::kAbort
                                 : InvariantAuditor::Mode::kCollect);
    engine_options.hooks = shard_audit.get();
  }
#endif
  ShardedEngine engine(engine_options);
  shared.engine = &engine;

  std::deque<FleetDomain> domains;
#if DMASIM_AUDIT_LEVEL >= 1
  std::vector<std::unique_ptr<SimulationAudit>> audits;
#endif
#if DMASIM_OBS >= 1
  std::vector<std::unique_ptr<SimulationObserver>> observers;
#endif
  for (int i = 0; i < options.domains; ++i) {
    FleetDomain& domain = domains.emplace_back(i, &shared);
    domain.policy = MakePolicy(options.base.policy, options.base.thresholds,
                               options.base.memory);
    domain.controller = std::make_unique<MemoryController>(
        &domain.simulator, options.base.memory, domain.policy.get());

    // Domains are statistically alike but never in lockstep: trace and
    // server randomness derive from the workload seed and the index.
    std::uint64_t seed_state =
        options.workload.seed +
        0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(i + 1);
    ServerConfig server_config = options.base.server;
    server_config.request_compute_time = options.workload.request_compute_time;
    server_config.forced_miss_ratio = options.workload.miss_ratio;
    server_config.seed = SplitMix64(seed_state);
    domain.server = std::make_unique<DataServer>(
        &domain.simulator, domain.controller.get(), server_config);

    WorkloadSpec spec = options.workload;
    spec.seed = SplitMix64(seed_state);
    domain.trace = GenerateWorkload(spec);
    if (!domain.trace.empty()) {
      FleetDomain* pumped = &domain;
      domain.simulator.ScheduleAt(domain.trace[0].time,
                                  [pumped]() { PumpDomain(pumped); });
    }

#if DMASIM_AUDIT_LEVEL >= 1
    if (options.base.audit_level >= 1) {
      SimulationAudit::Options audit_options;
      audit_options.level =
          std::min(options.base.audit_level, DMASIM_AUDIT_LEVEL);
      audit_options.period = options.base.audit_period;
      audit_options.mode = options.base.audit_abort
                               ? InvariantAuditor::Mode::kAbort
                               : InvariantAuditor::Mode::kCollect;
      audit_options.reference_model = options.base.audit_reference_model;
      audits.push_back(std::make_unique<SimulationAudit>(
          &domain.simulator, domain.controller.get(), audit_options));
    }
#endif

#if DMASIM_OBS >= 1
    if (options.base.obs_level >= 1) {
      SimulationObserver::Options obs_options;
      obs_options.level = std::min(options.base.obs_level, DMASIM_OBS);
      obs_options.trace_capacity = options.base.obs_trace_capacity;
      obs_options.simulator = &domain.simulator;
      // Every domain's observer sees the shared engine, so any domain's
      // metric snapshot carries the fleet-wide window/mailbox counters.
      obs_options.engine = &engine;
      observers.push_back(std::make_unique<SimulationObserver>(
          domain.controller.get(), domain.server.get(), obs_options));
    }
#endif

    FleetDomain* handled = &domain;
    engine.AddShard(&domain.simulator,
                    [handled](const ShardMessage& message) {
                      HandleMessage(handled, message);
                    });
  }

  const Tick end = options.workload.duration + options.base.drain;
  if (options.sim_threads != 1 && options.domains > 1) {
    ThreadPool pool(options.sim_threads);
    engine.Run(end, &pool);
  } else {
    engine.Run(end, nullptr);
  }
  for (FleetDomain& domain : domains) domain.simulator.RunUntil(end);

  FleetResults fleet;
  fleet.duration = end;
  for (FleetDomain& domain : domains) {
    FleetDomainResults summary;
    summary.results.workload = options.workload.name;
    summary.results.scheme = SchemeName(options.base.memory) + "/" +
                             PolicyKindName(options.base.policy);
#if DMASIM_AUDIT_LEVEL >= 1
    if (options.base.audit_level >= 1) {
      SimulationAudit& audit = *audits[static_cast<std::size_t>(domain.index)];
      audit.Finish();
      summary.results.audit_checks = audit.auditor().checks_run();
      summary.results.audit_failures = audit.auditor().failures().size();
    }
#endif
    CollectRunResults(&domain.simulator, domain.controller.get(),
                      domain.server.get(), &summary.results);
#if DMASIM_OBS >= 1
    if (options.base.obs_level >= 1) {
      SimulationObserver& observer =
          *observers[static_cast<std::size_t>(domain.index)];
      observer.Finish();
      summary.results.metrics = observer.SnapshotMetrics();
    }
#endif
    summary.remote_sent = domain.remote_sent;
    summary.remote_served = domain.remote_served;
    summary.remote_completed = domain.remote_completed;
    summary.remote_response = domain.remote_response;

    fleet.energy += summary.results.energy;
    fleet.client_response.Merge(summary.results.client_response);
    fleet.remote_response.Merge(summary.remote_response);
    fleet.executed_events += summary.results.executed_events;
    fleet.stepped_events += summary.results.stepped_events;
    fleet.remote_sent += summary.remote_sent;
    fleet.remote_served += summary.remote_served;
    fleet.remote_completed += summary.remote_completed;
    fleet.domains.push_back(std::move(summary));
  }
  fleet.engine = engine.stats();
  if (options.record_deliveries) fleet.deliveries = engine.deliveries();
  if (options.record_window_digests) {
    fleet.window_digests = engine.window_digests();
  }
#if DMASIM_AUDIT_LEVEL >= 1
  if (shard_audit != nullptr) {
    fleet.shard_audit_checks = shard_audit->checks_run();
    fleet.shard_audit_failures = shard_audit->auditor().failures().size();
  }
#endif
  return fleet;
}

}  // namespace dmasim
