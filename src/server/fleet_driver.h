// Fleet driver: one simulation spanning many memory-controller domains,
// executed by the sharded engine (sim/sharded_engine.h).
//
// Each domain is a full simulated system — private event kernel, memory
// controller with its chips and buses, data server, workload trace — and
// maps 1:1 onto an engine shard. Domains interact only through remote
// client reads: every request belongs to a client stream (a stable hash
// of its trace position), and a configurable fraction of streams are
// homed on a peer domain. A remote-homed read is forwarded over the
// fleet interconnect (one `remote_latency` hop each way) as a
// cross-shard message, served by the peer's data server, and its reply
// carries the completion time back to the requester. `remote_latency`
// is therefore the engine's conservative lookahead: no cross-domain
// effect can propagate faster than one hop.
//
// Determinism: RunFleet with the same options produces bit-identical
// results for every `sim_threads` value — the engine's windows, the
// per-domain event orders, and the barrier delivery order are all
// independent of the thread count. `FleetResults::Fingerprint()`
// digests the run for the pinned-checksum suites.
#ifndef DMASIM_SERVER_FLEET_DRIVER_H_
#define DMASIM_SERVER_FLEET_DRIVER_H_

#include <cstdint>
#include <vector>

#include "server/simulation_driver.h"
#include "sim/sharded_engine.h"
#include "stats/accumulators.h"
#include "trace/workloads.h"
#include "util/time.h"

namespace dmasim {

// Options are read-only once RunFleet starts: every field is
// DMASIM_SHARED_CONST for the run's duration.
struct FleetOptions {
  // Per-domain system configuration (memory, server, policy, audit
  // knobs). `base.sim_threads` is ignored — the fleet has its own.
  DMASIM_SHARED_CONST SimulationOptions base;
  // Per-domain workload template; each domain derives its own seed (and
  // its server's) from `workload.seed` and the domain index, so domains
  // are statistically alike but not in lockstep.
  DMASIM_SHARED_CONST WorkloadSpec workload;

  DMASIM_SHARED_CONST int domains = 4;
  // Engine worker threads; 1 = serial. Any value is bit-identical.
  DMASIM_SHARED_CONST int sim_threads = 1;

  // Fraction of client streams homed on a remote domain (0 disables
  // cross-domain traffic; forced to 0 when `domains` == 1).
  DMASIM_SHARED_CONST double remote_fraction = 0.05;
  // Client streams per domain; requests hash onto streams, and a
  // stream's home (local or which peer) is a stable function of its id.
  DMASIM_SHARED_CONST std::uint64_t streams_per_domain = 1024;
  // One-way fleet-interconnect hop. Doubles as the engine lookahead, so
  // it must be positive when `domains` > 1.
  DMASIM_SHARED_CONST Tick remote_latency = 20 * kMicrosecond;

  // Engine knobs (see ShardedEngine::Options).
  DMASIM_SHARED_CONST std::size_t mailbox_capacity = 4096;
  DMASIM_SHARED_CONST bool record_deliveries = false;
  DMASIM_SHARED_CONST bool record_window_digests = false;
  // Seeded engine fault for the determinism proof kit (kNone in any
  // real run; `fleet_scenario --engine-fault` plumbs it for the CI
  // divergence check).
  DMASIM_SHARED_CONST EngineFault engine_fault = EngineFault::kNone;
  // DMASIM_SCHED_FUZZ builds only: nonzero perturbs worker scheduling.
  DMASIM_SHARED_CONST std::uint64_t sched_fuzz_seed = 0;
};

// One domain's outcome: the usual single-system results plus its side of
// the remote-read traffic. Results structs are assembled after the run
// on the coordinator — barrier context, hence DMASIM_BARRIER_ONLY.
struct FleetDomainResults {
  DMASIM_BARRIER_ONLY SimulationResults results;
  DMASIM_BARRIER_ONLY std::uint64_t remote_sent = 0;   // Forwarded to a peer.
  DMASIM_BARRIER_ONLY std::uint64_t remote_served = 0;  // Peer reads served.
  DMASIM_BARRIER_ONLY std::uint64_t remote_completed = 0;  // Replies back.
  // End-to-end remote read, ticks.
  DMASIM_BARRIER_ONLY RunningMean remote_response;
};

struct FleetResults {
  DMASIM_BARRIER_ONLY std::vector<FleetDomainResults> domains;
  DMASIM_BARRIER_ONLY Tick duration = 0;

  // Fleet-wide aggregates (sums / merges over domains).
  DMASIM_BARRIER_ONLY EnergyBreakdown energy;
  // Locally-served requests.
  DMASIM_BARRIER_ONLY RunningMean client_response;
  // Remote round trips.
  DMASIM_BARRIER_ONLY RunningMean remote_response;
  DMASIM_BARRIER_ONLY std::uint64_t executed_events = 0;
  DMASIM_BARRIER_ONLY std::uint64_t stepped_events = 0;
  DMASIM_BARRIER_ONLY std::uint64_t remote_sent = 0;
  DMASIM_BARRIER_ONLY std::uint64_t remote_served = 0;
  DMASIM_BARRIER_ONLY std::uint64_t remote_completed = 0;

  // Engine outcome.
  DMASIM_BARRIER_ONLY ShardedEngine::Stats engine;
  // Delivered cross-shard messages in delivery order (empty unless
  // FleetOptions::record_deliveries; the golden-replay test pins it).
  DMASIM_BARRIER_ONLY std::vector<ShardMessage> deliveries;
  // Per-window delivery digests (empty unless
  // FleetOptions::record_window_digests). Comparing two runs finds the
  // first mismatching window of a divergence.
  DMASIM_BARRIER_ONLY std::vector<std::uint64_t> window_digests;
  // Shard-protocol audit outcome (zero unless wired: audit builds with
  // base.audit_level >= 1). Not part of Fingerprint() — auditing must
  // not change the result.
  DMASIM_BARRIER_ONLY std::uint64_t shard_audit_checks = 0;
  DMASIM_BARRIER_ONLY std::uint64_t shard_audit_failures = 0;

  // Order-stable FNV-1a digest of the simulation-visible outcome (event
  // counts, energy, latencies, remote traffic — not wall-clock). Equal
  // fingerprints across `sim_threads` values is the determinism
  // invariant.
  std::uint64_t Fingerprint() const;
};

// Runs the fleet to completion (workload duration + drain).
FleetResults RunFleet(const FleetOptions& options);

}  // namespace dmasim

#endif  // DMASIM_SERVER_FLEET_DRIVER_H_
