// Data-server request paths (Fig. 1 of the paper).
//
// A client read: the processor parses the request and checks the buffer
// cache index. On a hit, a network DMA moves the page from memory to the
// SAN. On a miss, a disk read brings the page into memory via a disk DMA,
// then a network DMA sends it out. A client write flows in reverse: a
// network DMA in, an acknowledgment, and a write-back to disk via a disk
// DMA. CPU accesses (database servers) go straight to the controller with
// priority.
#ifndef DMASIM_SERVER_DATA_SERVER_H_
#define DMASIM_SERVER_DATA_SERVER_H_

#include <cstdint>
#include <memory>

#include "core/memory_controller.h"
#include "disk/disk_model.h"
#include "net/network_model.h"
#include "obs/obs_config.h"
#include "server/buffer_cache.h"
#include "sim/inline_function.h"
#include "sim/simulator.h"
#include "stats/accumulators.h"
#include "util/random.h"
#include "util/time.h"

#if DMASIM_OBS >= 1
#include "stats/histogram.h"
#endif
#if DMASIM_OBS >= 2
#include "obs/event_trace.h"
#endif

namespace dmasim {

struct ServerConfig {
  // When >= 0, each read is a miss with this probability, regardless of
  // cache contents (reproduces the published per-trace disk DMA rates;
  // see DESIGN.md). When < 0, misses come from the LRU cache.
  double forced_miss_ratio = -1.0;

  // Buffer cache capacity in pages (only relevant without forced misses).
  std::uint64_t cache_pages = 1ULL << 17;

  // The disk array must sustain the trace's miss rate (OLTP-St implies
  // ~16.7k disk reads/s, i.e. an EMC-class array: ~90 concurrent 5 ms
  // operations). 128 spindles keeps utilization below saturation.
  DiskParams disk;
  int disks = 128;
  NetworkParams network;

  // Server-side request processing time added to every client response
  // (query parsing/execution on a database server; ~0 on a storage
  // server). Part of the client-perceived response time against which
  // CP-Limit is defined.
  Tick request_compute_time = 0;

  std::uint64_t seed = 0xda7a;
};

struct ServerStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t cpu_accesses = 0;
};

// Client-completion continuation. Sized for the observers that actually
// follow a request (a pointer or a couple of words); it rides inside the
// DMA pipeline's SmallFunction captures, so every byte here is multiplied
// by three nesting levels on the miss path.
using ClientCallback = InlineFunction<void(Tick), 16>;

class DataServer {
 public:
  // `controller` must outlive the server.
  DataServer(Simulator* simulator, MemoryController* controller,
             const ServerConfig& config);

  // Client read request for `page` (completes with a response-time
  // sample; `done` is optional).
  void ClientRead(std::uint64_t page, std::int64_t bytes,
                  ClientCallback done = {});

  // Client write request for `page`.
  void ClientWrite(std::uint64_t page, std::int64_t bytes,
                   ClientCallback done = {});

  // Processor access to `page` (cache-line sized).
  void CpuAccess(std::uint64_t page, std::int64_t bytes);

  // Client-perceived response times, in ticks.
  const RunningMean& ResponseTime() const { return response_time_; }
  const ServerStats& stats() const { return stats_; }
  const BufferCache& cache() const { return cache_; }
  DiskArray& disks() { return disks_; }

#if DMASIM_OBS >= 1
  // Observability hook points (SimulationObserver). Optional and inert
  // with respect to simulation behaviour.
  struct ObsHooks {
    Histogram* response_time = nullptr;  // Client response times, ticks.
#if DMASIM_OBS >= 2
    EventTracer* tracer = nullptr;
#endif
  };
  void SetObsHooks(const ObsHooks& hooks) { obs_ = hooks; }
#endif

 private:
  int PickBus();
  bool IsMiss(std::uint64_t page);
  void FinishRequest(Tick arrival, Tick dma_done, std::int64_t reply_bytes,
                     ClientCallback& done);

  Simulator* simulator_;
  MemoryController* controller_;
  ServerConfig config_;
  BufferCache cache_;
  DiskArray disks_;
  NetworkModel network_;
  Rng rng_;
  int next_bus_ = 0;

  RunningMean response_time_;
  ServerStats stats_;

#if DMASIM_OBS >= 1
  ObsHooks obs_;
#endif
};

}  // namespace dmasim

#endif  // DMASIM_SERVER_DATA_SERVER_H_
