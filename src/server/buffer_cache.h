// Main-memory buffer cache with an LRU index (Fig. 1: the processor
// checks the index table of the buffer cache before initiating DMAs).
//
// In the default experiment setup the workload's logical page space equals
// physical memory, so capacity misses do not occur naturally; the server
// layer can instead force the trace's published miss ratio (see
// ServerConfig::forced_miss_ratio). The cache is still maintained so that
// closed-loop examples with larger-than-memory data sets behave properly.
#ifndef DMASIM_SERVER_BUFFER_CACHE_H_
#define DMASIM_SERVER_BUFFER_CACHE_H_

#include <cstdint>
#include <list>
#include <unordered_map>

#include "util/check.h"

namespace dmasim {

class BufferCache {
 public:
  explicit BufferCache(std::uint64_t capacity_pages)
      : capacity_(capacity_pages) {
    DMASIM_EXPECTS(capacity_pages > 0);
  }

  // Returns true on a hit (and promotes the page to MRU).
  bool Lookup(std::uint64_t page) {
    auto it = index_.find(page);
    if (it == index_.end()) {
      ++misses_;
      return false;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    ++hits_;
    return true;
  }

  // Inserts `page` as MRU, evicting the LRU page if at capacity.
  // Returns the evicted page, or kNoEviction.
  static constexpr std::uint64_t kNoEviction = ~0ULL;
  std::uint64_t Insert(std::uint64_t page) {
    auto it = index_.find(page);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      return kNoEviction;
    }
    std::uint64_t evicted = kNoEviction;
    if (lru_.size() >= capacity_) {
      evicted = lru_.back();
      index_.erase(evicted);
      lru_.pop_back();
    }
    lru_.push_front(page);
    index_[page] = lru_.begin();
    return evicted;
  }

  bool Contains(std::uint64_t page) const { return index_.count(page) > 0; }
  std::uint64_t Size() const { return lru_.size(); }
  std::uint64_t Capacity() const { return capacity_; }
  std::uint64_t Hits() const { return hits_; }
  std::uint64_t Misses() const { return misses_; }
  double HitRatio() const {
    const std::uint64_t total = hits_ + misses_;
    return total > 0 ? static_cast<double>(hits_) / static_cast<double>(total)
                     : 0.0;
  }

 private:
  std::uint64_t capacity_;
  std::list<std::uint64_t> lru_;
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace dmasim

#endif  // DMASIM_SERVER_BUFFER_CACHE_H_
