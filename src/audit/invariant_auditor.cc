#include "audit/invariant_auditor.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "util/check.h"

namespace dmasim {

void InvariantAuditor::Register(std::string name, unsigned phases,
                                InvariantFn fn) {
  DMASIM_EXPECTS(fn != nullptr);
  DMASIM_EXPECTS(phases != 0);
  invariants_.push_back(Entry{std::move(name), phases, std::move(fn)});
}

int InvariantAuditor::RunPhase(AuditPhase phase) {
  int failed = 0;
  for (const Entry& entry : invariants_) {
    if ((entry.phases & static_cast<unsigned>(phase)) == 0) continue;
    ++checks_run_;
    std::string message;
    if (!entry.fn(&message)) {
      ++failed;
      ReportFailure(entry.name, message);
    }
  }
  return failed;
}

void InvariantAuditor::ReportFailure(const std::string& invariant,
                                     const std::string& message) {
  if (mode_ == Mode::kAbort) {
    std::fprintf(stderr, "dmasim audit: invariant '%s' violated: %s\n",
                 invariant.c_str(), message.c_str());
    std::abort();
  }
  failures_.push_back(AuditFailure{invariant, message});
}

std::vector<std::string> InvariantAuditor::InvariantNames() const {
  std::vector<std::string> names;
  names.reserve(invariants_.size());
  for (const Entry& entry : invariants_) names.push_back(entry.name);
  return names;
}

}  // namespace dmasim
