#include "audit/shard_audit.h"

#include <sstream>
#include <string>

namespace dmasim {

void ShardAudit::Check(bool ok, const char* invariant,
                       const ShardMessage& message, const char* detail) {
  ++checks_run_;
  if (ok) return;
  std::ostringstream text;
  text << detail << " (deliver_at=" << message.deliver_at
       << " src=" << message.src << " dst=" << message.dst
       << " send_seq=" << message.send_seq << " kind=" << message.kind
       << " window_horizon=" << window_horizon_ << ")";
  auditor_.ReportFailure(invariant, text.str());
}

void ShardAudit::OnWindowStart(std::uint64_t window, Tick horizon) {
  (void)window;
  window_horizon_ = horizon;
  in_window_ = true;
}

void ShardAudit::OnBarrier(std::uint64_t window,
                           std::vector<int>* drain_order) {
  (void)window;
  (void)drain_order;
  // New barrier: the delivery-order check restarts (the sort key is
  // per-barrier, not global).
  have_last_delivered_ = false;
}

void ShardAudit::OnDrained(const ShardMessage& message) {
  // Lookahead discipline: the message was pushed during the window that
  // just ended, whose horizon is window_horizon_. Anything earlier is
  // addressed into simulated time some shard may already have executed.
  Check(!in_window_ || message.deliver_at >= window_horizon_,
        "shard.lookahead-violation", message,
        "drained message addressed inside the just-executed window");

  // Mailbox FIFO per edge: send_seq is assigned by Send in push order
  // and is unique per source, so at drain time each source's sequence
  // must continue exactly where the previous barrier left off.
  const std::size_t src = message.src;
  if (next_seq_.size() <= src) next_seq_.resize(src + 1, 0);
  Check(message.send_seq == next_seq_[src], "shard.mailbox-fifo", message,
        "drained send_seq skips or repeats its source's sequence");
  next_seq_[src] = message.send_seq + 1;
}

void ShardAudit::OnDeliver(const ShardMessage& message) {
  // Causality: a delivery addressed before the barrier's own horizon
  // lands in a window the destination (and every other shard) already
  // executed.
  Check(!in_window_ || message.deliver_at >= window_horizon_,
        "shard.barrier-causality", message,
        "message delivered into an already-executed window");
  // Total delivery order: (deliver_at, src, send_seq) nondecreasing —
  // strictly increasing, in fact, since the key is unique per message.
  if (have_last_delivered_) {
    const ShardMessage& last = last_delivered_;
    const bool sorted =
        last.deliver_at < message.deliver_at ||
        (last.deliver_at == message.deliver_at &&
         (last.src < message.src ||
          (last.src == message.src && last.send_seq < message.send_seq)));
    Check(sorted, "shard.barrier-causality", message,
          "barrier delivery order is not the sorted total order");
  } else {
    ++checks_run_;  // The first delivery's order check is vacuous.
  }
  last_delivered_ = message;
  have_last_delivered_ = true;
}

}  // namespace dmasim
