#include "audit/simulation_audit.h"

#if DMASIM_AUDIT_LEVEL >= 1

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <string>

#include "util/check.h"

namespace dmasim {

namespace {

// Tolerance for reconstructing bucket energies from integer tick totals
// and state powers: the chip integrates segment by segment, so the two
// sums differ only by floating-point reassociation noise.
constexpr double kRelativeTolerance = 1e-6;

bool NearlyEqual(double a, double b) {
  const double scale = std::max({1e-12, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= kRelativeTolerance * scale;
}

std::string Format(const char* format, ...) {
  char buffer[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  return std::string(buffer);
}

}  // namespace

SimulationAudit::SimulationAudit(Simulator* simulator,
                                 MemoryController* controller,
                                 const Options& options)
    : simulator_(simulator),
      controller_(controller),
      options_(options),
      auditor_(options.mode),
      power_auditor_(options.reference_model != nullptr
                         ? options.reference_model
                         : &controller->chip_model(),
                     controller->chip_count()) {
  DMASIM_EXPECTS(simulator != nullptr);
  DMASIM_EXPECTS(controller != nullptr);
  DMASIM_EXPECTS(options.level >= 1);

  const int chips = controller_->chip_count();
  shadow_energy_.assign(static_cast<std::size_t>(chips), {});
  base_stats_.reserve(static_cast<std::size_t>(chips));
  base_energy_.reserve(static_cast<std::size_t>(chips));
  base_accounted_.reserve(static_cast<std::size_t>(chips));
  for (int i = 0; i < chips; ++i) {
    MemoryChip& chip = controller_->chip(i);
    chip.SetAuditSink(this);
    power_auditor_.Seed(i, chip.power_state());
    base_stats_.push_back(chip.stats());
    base_energy_.push_back(chip.energy());
    base_accounted_.push_back(chip.accounted_until());
    if (chip.energy().Total() > JoulesEnergy(0.0) ||
        chip.accounted_until() > 0) {
      attached_at_zero_ = false;
    }
  }

  RegisterStandardInvariants();
  if (options_.level >= 2) SchedulePeriodicPass();
}

SimulationAudit::~SimulationAudit() {
  for (int i = 0; i < controller_->chip_count(); ++i) {
    controller_->chip(i).SetAuditSink(nullptr);
  }
}

void SimulationAudit::Finish() { auditor_.RunPhase(AuditPhase::kEndOfRun); }

void SimulationAudit::OnPowerTransition(int chip, PowerState from,
                                        PowerState to, bool up, Tick start,
                                        Tick end) {
  std::string message = power_auditor_.Validate(chip, from, to, up, start, end);
  if (message.empty()) return;
  ++transition_violations_;
  if (first_transition_violation_.empty()) {
    first_transition_violation_ = message;
  }
  // Transition-time reporting is the level-2 behavior; at level 1 the
  // violation surfaces through the registry's end-of-run pass.
  if (options_.level >= 2 && auditor_.mode() == InvariantAuditor::Mode::kAbort) {
    auditor_.ReportFailure("power-state-legality", message);
  }
}

void SimulationAudit::OnEnergyAccounted(int chip, EnergyBucket bucket,
                                        JoulesEnergy joules, Ticks duration) {
  (void)duration;
  shadow_energy_[static_cast<std::size_t>(chip)]
                [static_cast<std::size_t>(bucket)] += joules;
}

void SimulationAudit::SchedulePeriodicPass() {
  simulator_->ScheduleAfter(options_.period, [this]() {
    auditor_.RunPhase(AuditPhase::kPeriodic);
    SchedulePeriodicPass();
  });
}

bool SimulationAudit::CheckEnergyConservation(std::string* message) {
  // Flush every chip to Now() (settling coalesced runs exactly) so the
  // integrated totals below are current.
  controller_->CollectEnergy();
  const ChipPowerModel& reference = options_.reference_model != nullptr
                                        ? *options_.reference_model
                                        : controller_->chip_model();
  MilliwattPower transition_power_min;
  MilliwattPower transition_power_max;
  reference.TransitionPowerBounds(&transition_power_min, &transition_power_max);
  MilliwattPower serving_power_min;
  MilliwattPower serving_power_max;
  reference.ServingPowerBounds(&serving_power_min, &serving_power_max);
  const MilliwattPower active_mw = reference.StatePowerMw(PowerState::kActive);

  for (int i = 0; i < controller_->chip_count(); ++i) {
    const MemoryChip& chip = controller_->chip(i);
    const ChipStats& now = chip.stats();
    const ChipStats& base = base_stats_[static_cast<std::size_t>(i)];

    // (a) Tick conservation, integer-exact: every accounted tick landed
    // in exactly one ChipStats slot.
    Tick slots = (now.dma_serving - base.dma_serving) +
                 (now.cpu_serving - base.cpu_serving) +
                 (now.migration_serving - base.migration_serving) +
                 (now.active_idle_dma - base.active_idle_dma) +
                 (now.active_idle_threshold - base.active_idle_threshold) +
                 (now.transition - base.transition);
    for (int s = 0; s < kPowerStateCount; ++s) {
      slots += now.low_power[s] - base.low_power[s];
    }
    const Tick accounted =
        chip.accounted_until() - base_accounted_[static_cast<std::size_t>(i)];
    if (slots != accounted) {
      *message = Format(
          "chip %d: stats time slots sum to %lld ticks but %lld ticks were "
          "accounted",
          i, static_cast<long long>(slots), static_cast<long long>(accounted));
      return false;
    }

    // (b) The shadow breakdown (accumulated from the chip's own energy
    // stream, same values in the same order) matches the chip's
    // breakdown bit for bit.
    for (int b = 0; b < kEnergyBucketCount; ++b) {
      const EnergyBucket bucket = static_cast<EnergyBucket>(b);
      const JoulesEnergy shadow = shadow_energy_[static_cast<std::size_t>(i)]
                                                [static_cast<std::size_t>(b)];
      const JoulesEnergy reported =
          chip.energy().Of(bucket) -
          base_energy_[static_cast<std::size_t>(i)].Of(bucket);
      const bool equal =
          attached_at_zero_ ? reported == shadow
                            : NearlyEqual(reported.joules(), shadow.joules());
      if (!equal) {
        *message = Format(
            "chip %d: %s bucket reports %.17g J but the shadow sum is "
            "%.17g J",
            i, EnergyBucketName(bucket).data(), reported.joules(),
            shadow.joules());
        return false;
      }
    }

    // (c) Each bucket's energy is reproducible from its tick total and
    // the reference model's powers. Idle-active buckets are exact at the
    // active state power; serving buckets are bounded by the model's
    // serving envelope (exact whenever the envelope is a point, i.e.
    // serving power is burst-independent); transition energy mixes
    // per-edge powers, so it is only bounded.
    struct Expectation {
      EnergyBucket bucket;
      Tick ticks;
      MilliwattPower power_min_mw;
      MilliwattPower power_max_mw;
    };
    const Expectation expectations[] = {
        {EnergyBucket::kActiveServing,
         (now.dma_serving - base.dma_serving) +
             (now.cpu_serving - base.cpu_serving),
         serving_power_min, serving_power_max},
        {EnergyBucket::kMigration,
         now.migration_serving - base.migration_serving, serving_power_min,
         serving_power_max},
        {EnergyBucket::kActiveIdleDma,
         now.active_idle_dma - base.active_idle_dma, active_mw, active_mw},
        {EnergyBucket::kActiveIdleThreshold,
         now.active_idle_threshold - base.active_idle_threshold, active_mw,
         active_mw},
    };
    for (const Expectation& expect : expectations) {
      const double reported =
          (chip.energy().Of(expect.bucket) -
           base_energy_[static_cast<std::size_t>(i)].Of(expect.bucket))
              .joules();
      if (expect.power_min_mw == expect.power_max_mw) {
        const double expected =
            EnergyOver(expect.power_min_mw, Ticks(expect.ticks)).joules();
        if (!NearlyEqual(reported, expected)) {
          *message = Format(
              "chip %d: %s bucket holds %.17g J but %lld ticks at %g mW "
              "integrate to %.17g J",
              i, EnergyBucketName(expect.bucket).data(), reported,
              static_cast<long long>(expect.ticks),
              expect.power_min_mw.milliwatts(), expected);
          return false;
        }
        continue;
      }
      const double bucket_lower =
          EnergyOver(expect.power_min_mw, Ticks(expect.ticks)).joules();
      const double bucket_upper =
          EnergyOver(expect.power_max_mw, Ticks(expect.ticks)).joules();
      if (reported < bucket_lower * (1.0 - kRelativeTolerance) - 1e-12 ||
          reported > bucket_upper * (1.0 + kRelativeTolerance) + 1e-12) {
        *message = Format(
            "chip %d: %s bucket holds %.17g J, outside the [%g, %g] J "
            "serving envelope for %lld ticks",
            i, EnergyBucketName(expect.bucket).data(), reported, bucket_lower,
            bucket_upper, static_cast<long long>(expect.ticks));
        return false;
      }
    }
    // Per-state residency: integrate only states the reference model
    // supports, and demand zero residency everywhere else (a tick spent
    // in an unsupported state would prove the chips ran a different
    // model than the audit was told about).
    JoulesEnergy low_power_expected;
    for (int s = 0; s < kPowerStateCount; ++s) {
      const PowerState state = static_cast<PowerState>(s);
      const Tick residency = now.low_power[s] - base.low_power[s];
      if (!reference.IsSupported(state)) {
        if (residency != 0) {
          *message = Format(
              "chip %d: %lld ticks of residency in %s, a state the "
              "reference model does not support",
              i, static_cast<long long>(residency),
              PowerStateName(state).data());
          return false;
        }
        continue;
      }
      low_power_expected +=
          EnergyOver(reference.StatePowerMw(state), Ticks(residency));
    }
    const JoulesEnergy low_power_reported =
        chip.energy().Of(EnergyBucket::kLowPower) -
        base_energy_[static_cast<std::size_t>(i)].Of(EnergyBucket::kLowPower);
    if (!NearlyEqual(low_power_reported.joules(),
                     low_power_expected.joules())) {
      *message = Format(
          "chip %d: LowPowerModes bucket holds %.17g J but per-state "
          "residency integrates to %.17g J",
          i, low_power_reported.joules(), low_power_expected.joules());
      return false;
    }
    const Tick transition_ticks = now.transition - base.transition;
    const double transition_reported =
        (chip.energy().Of(EnergyBucket::kTransition) -
         base_energy_[static_cast<std::size_t>(i)].Of(EnergyBucket::kTransition))
            .joules();
    const double lower =
        EnergyOver(transition_power_min, Ticks(transition_ticks)).joules();
    const double upper =
        EnergyOver(transition_power_max, Ticks(transition_ticks)).joules();
    if (transition_reported < lower * (1.0 - kRelativeTolerance) - 1e-12 ||
        transition_reported > upper * (1.0 + kRelativeTolerance) + 1e-12) {
      *message = Format(
          "chip %d: Transition bucket holds %.17g J, outside the [%g, %g] J "
          "bound for %lld transition ticks",
          i, transition_reported, lower, upper,
          static_cast<long long>(transition_ticks));
      return false;
    }
  }
  return true;
}

void SimulationAudit::RegisterStandardInvariants() {
  // Event kernel bookkeeping: coalesced-run credits may only add to the
  // executed count, never push it below the number of Step() calls.
  auditor_.Register(
      "event-accounting", AuditPhase::kEndOfRun | AuditPhase::kPeriodic,
      [this](std::string* message) {
        if (simulator_->ExecutedEvents() >= simulator_->SteppedEvents()) {
          return true;
        }
        *message = Format(
            "executed-event credit %llu fell below the %llu kernel steps",
            static_cast<unsigned long long>(simulator_->ExecutedEvents()),
            static_cast<unsigned long long>(simulator_->SteppedEvents()));
        return false;
      });

  // Every completed power-state transition was a legal edge with the
  // reference model's exact resync delay (validated as transitions
  // stream in; this entry surfaces what the stream recorded).
  auditor_.Register("power-state-legality",
                    AuditPhase::kEndOfRun | AuditPhase::kPeriodic,
                    [this](std::string* message) {
                      if (transition_violations_ == 0) return true;
                      *message = Format(
                          "%llu illegal transition(s); first: %s",
                          static_cast<unsigned long long>(
                              transition_violations_),
                          first_transition_violation_.c_str());
                      return false;
                    });

  auditor_.Register("energy-conservation",
                    AuditPhase::kEndOfRun | AuditPhase::kPeriodic,
                    [this](std::string* message) {
                      return CheckEnergyConservation(message);
                    });

  // The slack account's balance can never exceed the mu-derived budget
  // cap (credits are clamped; debits only lower it).
  auditor_.Register(
      "slack-budget", AuditPhase::kEndOfRun | AuditPhase::kPeriodic,
      [this](std::string* message) {
        if (!controller_->aligner().enabled()) return true;
        const SlackAccount& slack = controller_->aligner().slack();
        if (slack.slack() <= slack.cap()) return true;
        *message =
            Format("slack balance %.17g exceeds the mu-derived cap %.17g",
                   slack.slack(), slack.cap());
        return false;
      });

  // Slab leak detection: every acquired transfer descriptor is either
  // still in flight or was released exactly once.
  auditor_.Register(
      "transfer-pool-balance", AuditPhase::kEndOfRun | AuditPhase::kPeriodic,
      [this](std::string* message) {
        const ControllerStats& stats = controller_->stats();
        const std::uint64_t outstanding =
            stats.transfers_started - stats.transfers_completed;
        if (outstanding == controller_->InFlightTransfers()) return true;
        *message = Format(
            "%llu transfers outstanding by count but the pool holds %llu "
            "active descriptors",
            static_cast<unsigned long long>(outstanding),
            static_cast<unsigned long long>(controller_->InFlightTransfers()));
        return false;
      });

  // After the driver's drain window, nothing may still hold a slab
  // descriptor or sit gated behind DMA-TA — unless the simulation
  // horizon cut scheduled work off mid-flight. A non-empty event queue
  // at end-of-run means RunUntil() stopped the clock, not the workload
  // (a gated transfer's release deadline can fall past the horizon on
  // dense traces); descriptors those unexecuted events would complete
  // are not leaks. With the queue empty, anything still held can never
  // be released — the genuine leak / stuck-gate these checks exist for.
  auditor_.Register("transfer-pool-drained", AuditPhase::kEndOfRun,
                    [this](std::string* message) {
                      if (controller_->InFlightTransfers() == 0) return true;
                      if (simulator_->PendingEvents() > 0) return true;
                      *message = Format(
                          "%llu transfer descriptor(s) leaked past the drain",
                          static_cast<unsigned long long>(
                              controller_->InFlightTransfers()));
                      return false;
                    });
  auditor_.Register(
      "aligner-drained", AuditPhase::kEndOfRun, [this](std::string* message) {
        if (controller_->aligner().TotalPending() == 0) return true;
        if (simulator_->PendingEvents() > 0) return true;
        *message = Format("%d gated request(s) still pending after the drain",
                          controller_->aligner().TotalPending());
        return false;
      });

  // Access-monitor region discipline: the split/merge machinery must
  // keep the region list inside the [min_regions, max_regions] budget and
  // tiling the logical page space exactly (sorted, gap-free, covering
  // [0, pages)). A violated tiling would silently misattribute samples.
  auditor_.Register(
      "monitor-region-budget", AuditPhase::kEndOfRun | AuditPhase::kPeriodic,
      [this](std::string* message) {
        const RegionMonitor* monitor = controller_->monitor();
        if (monitor == nullptr) return true;
        const std::vector<MonitorRegion>& regions = monitor->regions();
        const MonitorConfig& config = monitor->config();
        const int count = static_cast<int>(regions.size());
        if (count < config.min_regions || count > config.max_regions) {
          *message = Format(
              "monitor holds %d regions, outside the [%d, %d] budget", count,
              config.min_regions, config.max_regions);
          return false;
        }
        std::uint64_t expected_start = 0;
        for (const MonitorRegion& region : regions) {
          if (region.start != expected_start || region.end <= region.start) {
            *message = Format(
                "monitor region [%llu, %llu) breaks the tiling at %llu",
                static_cast<unsigned long long>(region.start),
                static_cast<unsigned long long>(region.end),
                static_cast<unsigned long long>(expected_start));
            return false;
          }
          expected_start = region.end;
        }
        if (expected_start != monitor->pages()) {
          *message = Format(
              "monitor regions cover %llu pages of %llu",
              static_cast<unsigned long long>(expected_start),
              static_cast<unsigned long long>(monitor->pages()));
          return false;
        }
        return true;
      });

  // DMA-TA lockstep: only the first request of a transfer may be gated,
  // so a transfer never pays the alignment delay twice. (Level 2 also
  // checks the stronger per-chunk form inline in DeliverChunk: after the
  // gather, non-first chunks must find their chip awake.)
  auditor_.Register(
      "dma-ta-lockstep", AuditPhase::kEndOfRun, [this](std::string* message) {
        const std::uint64_t gated = controller_->aligner().TotalGated();
        const std::uint64_t started = controller_->stats().transfers_started;
        if (gated <= started) return true;
        *message = Format(
            "%llu gated first requests exceed the %llu transfers started",
            static_cast<unsigned long long>(gated),
            static_cast<unsigned long long>(started));
        return false;
      });
}

}  // namespace dmasim

#endif  // DMASIM_AUDIT_LEVEL >= 1
