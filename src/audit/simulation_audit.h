// Wires the invariant auditor into a live simulation: attaches itself as
// every chip's ChipAuditSink, registers the standard dmasim invariants
// (catalogued in DESIGN.md), and at level 2 schedules periodic registry
// sweeps and validates each power-state transition the moment it
// completes.
//
// The whole class exists only when the library is built with
// DMASIM_AUDIT_LEVEL >= 1; SimulationDriver's use of it is compiled out
// at level 0, which is what makes level-0 builds byte-identical to the
// pre-audit library.
#ifndef DMASIM_AUDIT_SIMULATION_AUDIT_H_
#define DMASIM_AUDIT_SIMULATION_AUDIT_H_

#include "audit/audit_config.h"

#if DMASIM_AUDIT_LEVEL >= 1

#include <array>
#include <cstdint>
#include <vector>

#include "audit/chip_audit_sink.h"
#include "audit/invariant_auditor.h"
#include "audit/power_state_auditor.h"
#include "core/memory_controller.h"
#include "mem/memory_chip.h"
#include "sim/simulator.h"
#include "stats/energy.h"
#include "util/time.h"

namespace dmasim {

class SimulationAudit : public ChipAuditSink {
 public:
  struct Options {
    // Effective audit level (already clamped to the compile-time level by
    // the caller): 1 = end-of-run registry pass only, 2 = also periodic
    // passes and transition-time validation/abort.
    int level = 1;
    Tick period = kMillisecond;  // Cadence of level-2 periodic passes.
    InvariantAuditor::Mode mode = InvariantAuditor::Mode::kAbort;
    // Model the power-state legality invariant judges transitions
    // against; null means the controller's own configured model.
    const ChipPowerModel* reference_model = nullptr;
  };

  // Both `simulator` and `controller` must outlive the audit. The
  // constructor attaches chip sinks and, at level 2, schedules the first
  // periodic pass.
  SimulationAudit(Simulator* simulator, MemoryController* controller,
                  const Options& options);
  ~SimulationAudit() override;

  SimulationAudit(const SimulationAudit&) = delete;
  SimulationAudit& operator=(const SimulationAudit&) = delete;

  // Runs the end-of-run registry phase. Call once, after the trace (and
  // drain) completed.
  void Finish();

  InvariantAuditor& auditor() { return auditor_; }
  const InvariantAuditor& auditor() const { return auditor_; }
  std::uint64_t transition_violations() const { return transition_violations_; }

  // ChipAuditSink:
  void OnPowerTransition(int chip, PowerState from, PowerState to, bool up,
                         Tick start, Tick end) override;
  void OnEnergyAccounted(int chip, EnergyBucket bucket, JoulesEnergy joules,
                         Ticks duration) override;

 private:
  void RegisterStandardInvariants();
  void SchedulePeriodicPass();
  bool CheckEnergyConservation(std::string* message);

  Simulator* simulator_;
  MemoryController* controller_;
  Options options_;
  InvariantAuditor auditor_;
  PowerStateAuditor power_auditor_;

  // Shadow energy accumulated bucket-by-bucket in the same order as the
  // chips' own breakdowns (bit-identical by construction).
  std::vector<std::array<JoulesEnergy, kEnergyBucketCount>> shadow_energy_;
  // Chip state at attach time, so invariants judge only what happened on
  // this audit's watch.
  std::vector<ChipStats> base_stats_;
  std::vector<EnergyBreakdown> base_energy_;
  std::vector<Tick> base_accounted_;
  bool attached_at_zero_ = true;

  std::uint64_t transition_violations_ = 0;
  std::string first_transition_violation_;
};

}  // namespace dmasim

#endif  // DMASIM_AUDIT_LEVEL >= 1

#endif  // DMASIM_AUDIT_SIMULATION_AUDIT_H_
