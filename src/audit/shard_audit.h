// Runtime invariants of the sharded engine's synchronization protocol —
// the dynamic layer of the determinism proof kit (DESIGN.md §15).
//
// ShardAudit observes a `ShardedEngine` run through the engine's
// `BarrierHooks` seam (every hook fires on the coordinator thread, so
// the audit needs no locking) and checks three invariants the
// conservative-lookahead protocol rests on:
//
//   shard.lookahead-violation   Every message drained at a barrier has
//                               deliver_at >= the horizon of the window
//                               it was sent in. A violation means some
//                               shard may already have executed past the
//                               delivery time (the `deliver-early`
//                               seeded fault trips exactly this).
//   shard.mailbox-fifo          Per source shard, drained send_seq
//                               values are strictly increasing across
//                               the whole run — the SPSC mailboxes
//                               neither drop, duplicate, nor reorder.
//   shard.barrier-causality     Within a barrier, messages are handed to
//                               handlers in the sorted total order
//                               (deliver_at, src, send_seq), and never
//                               with deliver_at inside an
//                               already-executed window (deliver_at <
//                               the barrier's own horizon). The
//                               `skip-barrier-sort` seeded fault trips
//                               the order half on any non-identity
//                               drain permutation.
//
// Like InvariantAuditor itself, this is ordinary code with no
// conditional compilation — tests use it at any audit level; the fleet
// driver instantiates it under `DMASIM_AUDIT_LEVEL >= 1` builds when
// `--audit` is on.
#ifndef DMASIM_AUDIT_SHARD_AUDIT_H_
#define DMASIM_AUDIT_SHARD_AUDIT_H_

#include <cstdint>
#include <vector>

#include "audit/invariant_auditor.h"
#include "sim/sharded_engine.h"
#include "util/time.h"

namespace dmasim {

class ShardAudit : public BarrierHooks {
 public:
  explicit ShardAudit(InvariantAuditor::Mode mode = InvariantAuditor::Mode::kAbort)
      : auditor_(mode) {}

  // BarrierHooks (coordinator thread only).
  void OnWindowStart(std::uint64_t window, Tick horizon) override;
  void OnBarrier(std::uint64_t window, std::vector<int>* drain_order) override;
  void OnDrained(const ShardMessage& message) override;
  void OnDeliver(const ShardMessage& message) override;

  std::uint64_t checks_run() const { return checks_run_; }
  const InvariantAuditor& auditor() const { return auditor_; }

 private:
  void Check(bool ok, const char* invariant, const ShardMessage& message,
             const char* detail);

  InvariantAuditor auditor_;
  std::uint64_t checks_run_ = 0;
  // Horizon of the window whose barrier is currently draining; valid
  // once the first window started.
  Tick window_horizon_ = 0;
  bool in_window_ = false;
  // Per-source next expected send_seq (grows on first sight of a src).
  std::vector<std::uint64_t> next_seq_;
  // Previous delivery within the current barrier, for the order check.
  ShardMessage last_delivered_;
  bool have_last_delivered_ = false;
};

}  // namespace dmasim

#endif  // DMASIM_AUDIT_SHARD_AUDIT_H_
