#include "audit/power_state_auditor.h"

#include <cstdio>

#include "util/check.h"

namespace dmasim {

namespace {

std::string Describe(int chip, PowerState from, PowerState to, Tick start,
                     Tick end, const char* what) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "chip %d: %s -> %s over [%lld, %lld]: %s", chip,
                PowerStateName(from).data(), PowerStateName(to).data(),
                static_cast<long long>(start), static_cast<long long>(end),
                what);
  return std::string(buffer);
}

}  // namespace

PowerStateAuditor::PowerStateAuditor(const ChipPowerModel* reference,
                                     int chip_count)
    : reference_(reference),
      last_state_(static_cast<std::size_t>(chip_count), PowerState::kActive) {
  DMASIM_EXPECTS(reference != nullptr);
  DMASIM_EXPECTS(chip_count > 0);
}

void PowerStateAuditor::Seed(int chip, PowerState state) {
  last_state_[static_cast<std::size_t>(chip)] = state;
}

std::string PowerStateAuditor::Validate(int chip, PowerState from,
                                        PowerState to, bool up, Tick start,
                                        Tick end) {
  ++transitions_checked_;
  const std::size_t index = static_cast<std::size_t>(chip);
  DMASIM_EXPECTS(index < last_state_.size());

  if (from != last_state_[index]) {
    return Describe(chip, from, to, start, end,
                    "discontinuous (chip was not in the claimed origin "
                    "state)");
  }
  if (end < start) {
    return Describe(chip, from, to, start, end, "negative duration");
  }
  const Tick duration = end - start;

  if (up) {
    // Wakes always land in active, from a genuinely lower-power state,
    // and take exactly the reference model's resync latency.
    if (to != PowerState::kActive) {
      return Describe(chip, from, to, start, end,
                      "wake must end in the active state");
    }
    if (from == PowerState::kActive) {
      return Describe(chip, from, to, start, end,
                      "wake from active is meaningless");
    }
    if (!reference_->LegalTransition(from, PowerState::kActive)) {
      return Describe(chip, from, to, start, end,
                      "reference model has no such wake edge");
    }
    const Tick expected =
        reference_->TransitionBetween(from, PowerState::kActive)
            .duration.value();
    if (duration != expected) {
      char what[128];
      std::snprintf(what, sizeof(what),
                    "resync took %lld ticks, reference model requires %lld",
                    static_cast<long long>(duration),
                    static_cast<long long>(expected));
      return Describe(chip, from, to, start, end, what);
    }
  } else {
    // Step-downs move strictly deeper along the reference model's
    // power-ordered chain, on an edge the model declares legal.
    if (!reference_->IsSupported(from) || !reference_->IsSupported(to) ||
        reference_->StateIndex(to) <= reference_->StateIndex(from)) {
      return Describe(chip, from, to, start, end,
                      "step-down must enter a strictly lower-power state");
    }
    if (!reference_->LegalTransition(from, to)) {
      return Describe(chip, from, to, start, end,
                      "reference model has no such step-down edge");
    }
    const Tick expected =
        reference_->TransitionBetween(from, to).duration.value();
    if (duration != expected) {
      char what[128];
      std::snprintf(what, sizeof(what),
                    "step-down took %lld ticks, reference model requires "
                    "%lld",
                    static_cast<long long>(duration),
                    static_cast<long long>(expected));
      return Describe(chip, from, to, start, end, what);
    }
  }

  last_state_[index] = to;
  return std::string();
}

}  // namespace dmasim
