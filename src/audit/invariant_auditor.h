// Registry of named runtime invariants (the auditor half of this PR's
// correctness tooling; the static half lives in tools/lint/).
//
// Subsystems register closures that inspect live simulation state and
// return whether a property still holds. The driver runs the registry at
// the phases each invariant subscribed to: once at end-of-run (level 1)
// and on a periodic simulated-time cadence (level 2). Transition-time
// checks (level 2) do not go through the registry -- they are validated
// inline by the observing hook and reported here via ReportFailure.
//
// The registry itself carries no conditional compilation: it is ordinary
// code, unit-testable at any audit level. What the build level controls
// is whether anything *instantiates* it (SimulationAudit and the chip
// hooks are compiled out below level 1).
#ifndef DMASIM_AUDIT_INVARIANT_AUDITOR_H_
#define DMASIM_AUDIT_INVARIANT_AUDITOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace dmasim {

// When a registered invariant is evaluated.
enum class AuditPhase : unsigned {
  kEndOfRun = 1u << 0,  // Once, after the trace (and drain) finished.
  kPeriodic = 1u << 1,  // Every SimulationOptions::audit_period ticks.
};

constexpr unsigned operator|(AuditPhase a, AuditPhase b) {
  return static_cast<unsigned>(a) | static_cast<unsigned>(b);
}
constexpr unsigned operator|(unsigned a, AuditPhase b) {
  return a | static_cast<unsigned>(b);
}

struct AuditFailure {
  std::string invariant;
  std::string message;
};

class InvariantAuditor {
 public:
  enum class Mode {
    kAbort,    // A violated invariant aborts the process with diagnostics.
    kCollect,  // Violations accumulate in failures() (for tests).
  };

  // Returns true when the invariant holds; on failure may fill *message
  // (never null) with a diagnostic.
  using InvariantFn = std::function<bool(std::string* message)>;

  explicit InvariantAuditor(Mode mode = Mode::kAbort) : mode_(mode) {}

  // Registers `fn` under `name` for every phase in the `phases` bitmask.
  void Register(std::string name, unsigned phases, InvariantFn fn);
  void Register(std::string name, AuditPhase phase, InvariantFn fn) {
    Register(std::move(name), static_cast<unsigned>(phase), std::move(fn));
  }

  // Evaluates every invariant subscribed to `phase`. Returns the number
  // of failures detected in this pass (always 0 in kAbort mode, which
  // does not return on failure).
  int RunPhase(AuditPhase phase);

  // Records a violation detected outside the registry (transition-time
  // hooks). Aborts in kAbort mode.
  void ReportFailure(const std::string& invariant, const std::string& message);

  Mode mode() const { return mode_; }
  std::uint64_t checks_run() const { return checks_run_; }
  const std::vector<AuditFailure>& failures() const { return failures_; }
  std::size_t registered_count() const { return invariants_.size(); }
  std::vector<std::string> InvariantNames() const;

 private:
  struct Entry {
    std::string name;
    unsigned phases = 0;
    InvariantFn fn;
  };

  Mode mode_;
  std::vector<Entry> invariants_;
  std::vector<AuditFailure> failures_;
  std::uint64_t checks_run_ = 0;
};

}  // namespace dmasim

#endif  // DMASIM_AUDIT_INVARIANT_AUDITOR_H_
