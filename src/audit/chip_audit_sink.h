// Observer interface through which a MemoryChip streams auditable facts
// to the invariant auditor. Kept to this tiny header so src/mem depends
// only on the interface, never on the auditor implementation.
//
// The hooks exist (and the chip carries a sink pointer) only when the
// library is built with DMASIM_AUDIT_LEVEL >= 1; at level 0 the chip has
// no audit members at all.
#ifndef DMASIM_AUDIT_CHIP_AUDIT_SINK_H_
#define DMASIM_AUDIT_CHIP_AUDIT_SINK_H_

#include "mem/power_model.h"
#include "stats/energy.h"
#include "util/time.h"
#include "util/units.h"

namespace dmasim {

class ChipAuditSink {
 public:
  virtual ~ChipAuditSink() = default;

  // A power-state transition of chip `chip` completed: it left `from` and
  // settled in `to` over the simulated interval [start, end]. `up` is the
  // chip's own classification (wake vs step-down).
  virtual void OnPowerTransition(int chip, PowerState from, PowerState to,
                                 bool up, Tick start, Tick end) = 0;

  // Chip `chip` integrated `joules` of energy into `bucket` over
  // `duration`. Called with the exact value the chip adds to its own
  // breakdown, in the same order, so a sink can maintain a bit-identical
  // shadow sum.
  virtual void OnEnergyAccounted(int chip, EnergyBucket bucket,
                                 JoulesEnergy joules, Ticks duration) = 0;
};

}  // namespace dmasim

#endif  // DMASIM_AUDIT_CHIP_AUDIT_SINK_H_
