// Validates a stream of completed power-state transitions against a
// reference ChipPowerModel: edge legality, per-chip state continuity,
// and exact resync (transition) durations.
//
// The auditor is deliberately decoupled from MemoryChip: it judges only
// the transition *records*, against a model the caller chooses. Auditing
// a simulation whose chips run a deliberately corrupted model against the
// pristine Table 1 reference is how the seeded-fault regression test
// proves a skipped resync delay gets caught.
#ifndef DMASIM_AUDIT_POWER_STATE_AUDITOR_H_
#define DMASIM_AUDIT_POWER_STATE_AUDITOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mem/chip_power_model.h"
#include "mem/power_model.h"
#include "util/time.h"

namespace dmasim {

class PowerStateAuditor {
 public:
  // `reference` must outlive the auditor.
  PowerStateAuditor(const ChipPowerModel* reference, int chip_count);

  // Seeds the continuity check with chip `chip`'s state at attach time
  // (transitions before the first Seed/record would otherwise be judged
  // against an unknown origin state).
  void Seed(int chip, PowerState state);

  // Validates one completed transition. Returns an empty string when the
  // transition is legal, else a diagnostic.
  std::string Validate(int chip, PowerState from, PowerState to, bool up,
                       Tick start, Tick end);

  std::uint64_t transitions_checked() const { return transitions_checked_; }

 private:
  const ChipPowerModel* reference_;
  // Last known state per chip; kActive until seeded (chips are
  // constructed active).
  std::vector<PowerState> last_state_;
  std::uint64_t transitions_checked_ = 0;
};

}  // namespace dmasim

#endif  // DMASIM_AUDIT_POWER_STATE_AUDITOR_H_
