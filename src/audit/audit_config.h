// Compile-time switch for the runtime invariant auditor (see DESIGN.md,
// "Runtime invariant auditor").
//
// DMASIM_AUDIT_LEVEL is injected by CMake (cache variable of the same
// name) and selects how much auditing is compiled into the library:
//   0  -- off. No audit code, no audit data members; the hot paths are
//         byte-identical to a build without the subsystem.
//   1  -- end-of-run. Chips stream transitions and energy segments to an
//         attached sink; all registered invariants run once when the
//         driver finishes a trace.
//   2  -- periodic + transition-time. Additionally re-checks the registry
//         on a fixed simulated-time cadence, validates every power-state
//         transition the moment it completes, and arms inline checks
//         (event-kernel FIFO pop order, DMA-TA lockstep) that have no
//         registry entry because they live on the hot path itself.
//
// The compile-time level is a ceiling: a library built at level 2 still
// runs unaudited unless SimulationOptions::audit_level asks for checks.
#ifndef DMASIM_AUDIT_AUDIT_CONFIG_H_
#define DMASIM_AUDIT_AUDIT_CONFIG_H_

#ifndef DMASIM_AUDIT_LEVEL
#define DMASIM_AUDIT_LEVEL 0
#endif

namespace dmasim {

// The level this library was compiled with, for runtime interrogation
// (e.g. dmasim_sweep warns when --audit is used on a level-0 build).
inline constexpr int kCompiledAuditLevel = DMASIM_AUDIT_LEVEL;

}  // namespace dmasim

#endif  // DMASIM_AUDIT_AUDIT_CONFIG_H_
