// Storage-area-network link model.
//
// Client requests arrive over a SAN (Fig. 1 of the paper). For
// client-perceived response time accounting we only need a per-message
// latency: a fixed overhead plus serialization at the link rate. Energy
// on the network side is out of scope (the paper's techniques operate at
// time scales far below network/disk power-management granularity, so they
// do not change network energy; Section 4 notes).
#ifndef DMASIM_NET_NETWORK_MODEL_H_
#define DMASIM_NET_NETWORK_MODEL_H_

#include <cstdint>

#include "util/check.h"
#include "util/time.h"

namespace dmasim {

struct NetworkParams {
  Tick per_message_overhead = 20 * kMicrosecond;  // Protocol + NIC overhead.
  double link_bytes_per_second = 1.0e9;           // ~1 GB/s SAN link.
};

class NetworkModel {
 public:
  explicit NetworkModel(const NetworkParams& params = {}) : params_(params) {
    DMASIM_EXPECTS(params.link_bytes_per_second > 0.0);
    DMASIM_EXPECTS(params.per_message_overhead >= 0);
  }

  // One-way latency of a `bytes`-sized message.
  Tick MessageTime(std::int64_t bytes) const {
    DMASIM_EXPECTS(bytes >= 0);
    return params_.per_message_overhead +
           TransferTime(bytes, params_.link_bytes_per_second);
  }

  const NetworkParams& params() const { return params_; }

 private:
  NetworkParams params_;
};

}  // namespace dmasim

#endif  // DMASIM_NET_NETWORK_MODEL_H_
