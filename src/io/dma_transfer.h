// DMA transfer descriptor.
//
// A DMA transfer moves `total_bytes` between a device on one I/O bus and
// one memory chip, as a sequence of DMA-memory requests of
// `chunk_bytes` each (8 bytes on a 64-bit PCI-X bus; larger chunks can be
// configured to coarsen event granularity without changing energy
// fractions). The transfer is created by the memory controller, paced by
// its `IoBus`, and completed when the last chunk has been served by the
// chip. Descriptors are recycled through a `TransferPool`.
#ifndef DMASIM_IO_DMA_TRANSFER_H_
#define DMASIM_IO_DMA_TRANSFER_H_

#include <cstdint>

#include "obs/obs_config.h"
#include "sim/inline_function.h"
#include "util/time.h"

namespace dmasim {

// Origin of a transfer, for statistics and trace bookkeeping.
enum class DmaKind : int { kNetwork = 0, kDisk };

struct DmaTransfer {
  std::uint64_t id = 0;
  int bus_id = 0;
  int chip_index = 0;
  std::uint64_t physical_page = 0;
  DmaKind kind = DmaKind::kNetwork;

  std::int64_t total_bytes = 0;
  std::int64_t chunk_bytes = 8;
  std::int64_t issued_bytes = 0;
  std::int64_t completed_bytes = 0;

  // True while the first DMA-memory request is buffered by DMA-TA and the
  // DMA engine is therefore not issuing further requests.
  bool blocked = false;

  Tick start_time = 0;
  Tick gated_at = -1;  // Time the first request was gated, or -1.

#if DMASIM_OBS >= 2
  // Whether DMA-TA ever gated this transfer (`gated_at` is reset on
  // release, but the lifecycle trace event needs the history).
  bool obs_was_gated = false;
#endif

  // Invoked once, when the final chunk completes.
  SmallFunction<void(Tick)> on_complete;

  // --- Chunk-run coalescing (owned by MemoryController) ------------------
  // While `run_active`, the controller serves a run of this transfer's
  // chunks in one deferred "run" event; `run_next_issue` is the issue time
  // of the first not-yet-replayed chunk and `run_chunks_left` the number
  // of chunks the run still covers (a run absorbs only the chunks that
  // finish before the next pending event). `run_generation` invalidates a
  // pending run-end event when the run is settled early — it survives
  // pool recycling so a stale event can never match a slot's new occupant.
  bool run_active = false;
  Tick run_next_issue = 0;
  std::int64_t run_chunks_left = 0;
  std::uint64_t run_generation = 0;

  // True while the descriptor is checked out of its TransferPool
  // (maintained by the pool, not Reset). The access monitor's occupancy
  // probes walk the pool's slabs and must skip free slots.
  bool pool_active = false;

  // True once an occupancy probe has attributed this transfer to its
  // region. Observation is edge-triggered — a transfer counts once, at
  // the first sampling tick that finds it in flight — because in-flight
  // residency is dominated by bus queueing, and re-counting a queued
  // transfer at every probe would weight pages by congestion rather than
  // access frequency.
  bool monitor_seen = false;

  std::int64_t RemainingToIssue() const { return total_bytes - issued_bytes; }
  bool Complete() const { return completed_bytes >= total_bytes; }
  bool FirstChunk() const { return issued_bytes == 0; }

  // Re-initializes a recycled descriptor (everything except
  // `run_generation`; see above).
  void Reset() {
    id = 0;
    bus_id = 0;
    chip_index = 0;
    physical_page = 0;
    kind = DmaKind::kNetwork;
    total_bytes = 0;
    chunk_bytes = 8;
    issued_bytes = 0;
    completed_bytes = 0;
    blocked = false;
    start_time = 0;
    gated_at = -1;
#if DMASIM_OBS >= 2
    obs_was_gated = false;
#endif
    on_complete = {};
    run_active = false;
    run_next_issue = 0;
    run_chunks_left = 0;
    monitor_seen = false;
  }
};

}  // namespace dmasim

#endif  // DMASIM_IO_DMA_TRANSFER_H_
