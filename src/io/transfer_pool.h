// Slab allocator for DMA transfer descriptors.
//
// The controller starts one transfer per client DMA — hundreds of
// thousands per simulated second. Allocating each descriptor on the heap
// (and tracking it in a hash map keyed by id) put an allocator
// round-trip and a hash probe on the per-transfer hot path. The pool
// hands out pointers from fixed 256-descriptor slabs through a free
// list: acquire and release are a pointer pop/push, and descriptors are
// stable in memory so callbacks can capture them directly.
#ifndef DMASIM_IO_TRANSFER_POOL_H_
#define DMASIM_IO_TRANSFER_POOL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "io/dma_transfer.h"
#include "util/check.h"

namespace dmasim {

class TransferPool {
 public:
  TransferPool() = default;

  TransferPool(const TransferPool&) = delete;
  TransferPool& operator=(const TransferPool&) = delete;

  // Returns a reset descriptor (its `run_generation` is preserved across
  // reuse; see DmaTransfer::Reset). Pointers stay valid until Release.
  DmaTransfer* Acquire() {
    if (free_.empty()) Grow();
    DmaTransfer* transfer = free_.back();
    free_.pop_back();
    transfer->Reset();
    transfer->pool_active = true;
    ++active_;
    return transfer;
  }

  void Release(DmaTransfer* transfer) {
    DMASIM_EXPECTS(transfer != nullptr);
    DMASIM_EXPECTS(transfer->pool_active);
    DMASIM_EXPECTS(active_ > 0);
    transfer->pool_active = false;
    --active_;
    free_.push_back(transfer);
  }

  std::uint64_t ActiveCount() const { return active_; }

  // Visits every checked-out descriptor in slab order (deterministic:
  // slabs and slots are visited by allocation order, independent of the
  // free-list state). This is the access monitor's occupancy probe; the
  // paper's workloads keep at most a few dozen descriptors in flight, so
  // the walk touches one slab and is cheap enough for a per-microsecond
  // sampling event. Non-const so the probe can mark descriptors seen.
  template <typename Fn>
  void ForEachActive(Fn&& fn) {
    for (const std::unique_ptr<DmaTransfer[]>& block : blocks_) {
      for (std::size_t i = 0; i < kBlockSize; ++i) {
        if (block[i].pool_active) fn(block[i]);
      }
    }
  }

 private:
  static constexpr std::size_t kBlockSize = 256;

  void Grow() {
    // Slab growth is amortized; the per-transfer hot path only recycles
    // descriptors from free_.  dmasim-lint: allow(heap-alloc)
    blocks_.push_back(std::make_unique<DmaTransfer[]>(kBlockSize));
    DmaTransfer* block = blocks_.back().get();
    free_.reserve(free_.size() + kBlockSize);
    for (std::size_t i = kBlockSize; i > 0; --i) {
      free_.push_back(&block[i - 1]);
    }
  }

  std::vector<std::unique_ptr<DmaTransfer[]>> blocks_;
  std::vector<DmaTransfer*> free_;
  std::uint64_t active_ = 0;
};

}  // namespace dmasim

#endif  // DMASIM_IO_TRANSFER_POOL_H_
