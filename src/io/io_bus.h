// I/O bus model (PCI-X by default).
//
// A bus carries at most one DMA-memory request ("chunk") per slot time,
// where slot = chunk_bytes / bandwidth (12 memory cycles for 8 bytes on a
// 1.064 GB/s PCI-X bus against a 3.2 GB/s memory bus). Ready transfers
// share the bus round-robin. A transfer does not issue its next chunk
// until the previous one has been served by memory, and issues nothing at
// all while its first chunk is gated by DMA-TA -- exactly the "subsequent
// requests of the same DMA transfer will not be issued" behaviour of the
// paper (Section 4.1.1).
#ifndef DMASIM_IO_IO_BUS_H_
#define DMASIM_IO_IO_BUS_H_

#include <cstdint>
#include <deque>

#include "io/dma_transfer.h"
#include "obs/obs_config.h"
#include "sim/simulator.h"
#include "util/check.h"
#include "util/time.h"

#if DMASIM_OBS >= 2
#include "obs/event_trace.h"
#endif

namespace dmasim {

// Receives DMA-memory requests issued by a bus. Implemented by the memory
// controller.
class DmaRequestSink {
 public:
  virtual ~DmaRequestSink() = default;

  // One chunk of `transfer` was placed on the bus at the current simulated
  // time. The sink either forwards it to the target chip or (for a first
  // chunk headed to a sleeping chip) buffers it for temporal alignment.
  // `chunk_bytes` is the size of this chunk (the final chunk may be
  // short); `first` marks the transfer's very first request.
  virtual void DeliverChunk(DmaTransfer* transfer, std::int64_t chunk_bytes,
                            bool first) = 0;
};

class IoBus {
 public:
  // `bandwidth` in bytes/second; `chunk_bytes` is the DMA-memory request
  // size carried per slot.
  IoBus(Simulator* simulator, int id, double bandwidth_bytes_per_second,
        std::int64_t chunk_bytes);

  IoBus(const IoBus&) = delete;
  IoBus& operator=(const IoBus&) = delete;

  void SetSink(DmaRequestSink* sink) { sink_ = sink; }

#if DMASIM_OBS >= 2
  // Attaches the observability tracer (null detaches): each transfer
  // entering the bus is recorded as an instant event on the bus lane.
  void SetObsTracer(EventTracer* tracer) { obs_tracer_ = tracer; }
#endif

  // Begins pacing `transfer` (non-owning; the caller keeps it alive until
  // its completion callback runs).
  void StartTransfer(DmaTransfer* transfer);

  // Re-queues `transfer` for its next chunk after the previous one was
  // served (or after a gated first chunk was released and served).
  void MakeReady(DmaTransfer* transfer);

  // --- Chunk-run coalescing support (see MemoryController) ---------------

  // True when the bus's near future is fully determined by one transfer:
  // nothing queued, no issue event pending. Only then can the controller
  // serve a run of that transfer's chunks in one event and replay the
  // bus-side bookkeeping afterwards.
  bool CanCoalesce() const { return ready_.empty() && !issue_scheduled_; }

  // Replays one chunk issue that happened in the past at `issue`:
  // the same bookkeeping as Issue(), minus the event.
  void AccountCoalescedChunk(DmaTransfer* transfer, std::int64_t chunk,
                             Tick issue) {
    transfer->issued_bytes += chunk;
    next_free_slot_ = issue + slot_time_;
    ++chunks_issued_;
  }

  // Puts a settled run's transfer back on the normal per-chunk path, with
  // its next Issue event at `next_issue` (the slot the replay arrived at).
  void ResumeCoalescedTransfer(DmaTransfer* transfer, Tick next_issue);

  int id() const { return id_; }
  Tick SlotTime() const { return slot_time_; }
  Tick next_free_slot() const { return next_free_slot_; }
  double BandwidthBytesPerSecond() const { return bandwidth_; }
  std::int64_t chunk_bytes() const { return chunk_bytes_; }
  std::uint64_t ChunksIssued() const { return chunks_issued_; }
  std::uint64_t TransfersStarted() const { return transfers_started_; }

 private:
  void ScheduleIssue();
  void Issue();

  Simulator* simulator_;
  int id_;
  double bandwidth_;
  std::int64_t chunk_bytes_;
  Tick slot_time_;
  DmaRequestSink* sink_ = nullptr;

  std::deque<DmaTransfer*> ready_;
  bool issue_scheduled_ = false;
  Tick next_free_slot_ = 0;

  std::uint64_t chunks_issued_ = 0;
  std::uint64_t transfers_started_ = 0;

#if DMASIM_OBS >= 2
  EventTracer* obs_tracer_ = nullptr;
#endif
};

}  // namespace dmasim

#endif  // DMASIM_IO_IO_BUS_H_
