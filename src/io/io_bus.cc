#include "io/io_bus.h"

#include <algorithm>


namespace dmasim {

IoBus::IoBus(Simulator* simulator, int id, double bandwidth_bytes_per_second,
             std::int64_t chunk_bytes)
    : simulator_(simulator),
      id_(id),
      bandwidth_(bandwidth_bytes_per_second),
      chunk_bytes_(chunk_bytes) {
  DMASIM_EXPECTS(bandwidth_ > 0.0);
  DMASIM_EXPECTS(chunk_bytes_ > 0);
  slot_time_ = TransferTime(chunk_bytes_, bandwidth_);
  DMASIM_ENSURES(slot_time_ > 0);
}

void IoBus::StartTransfer(DmaTransfer* transfer) {
  DMASIM_EXPECTS(transfer != nullptr);
  DMASIM_EXPECTS(transfer->bus_id == id_);
  DMASIM_EXPECTS(transfer->total_bytes > 0);
  transfer->chunk_bytes = std::min<std::int64_t>(chunk_bytes_,
                                                 transfer->total_bytes);
  ++transfers_started_;
#if DMASIM_OBS >= 2
  if (obs_tracer_ != nullptr) {
    obs_tracer_->BusTransferStart(simulator_->Now(), id_, transfer->id,
                                  transfer->total_bytes);
  }
#endif
  MakeReady(transfer);
}

void IoBus::MakeReady(DmaTransfer* transfer) {
  DMASIM_EXPECTS(!transfer->blocked);
  DMASIM_EXPECTS(transfer->RemainingToIssue() > 0);
  ready_.push_back(transfer);
  ScheduleIssue();
}

void IoBus::ResumeCoalescedTransfer(DmaTransfer* transfer, Tick next_issue) {
  DMASIM_EXPECTS(!transfer->blocked);
  DMASIM_EXPECTS(transfer->RemainingToIssue() > 0);
  DMASIM_CHECK(CanCoalesce());
  ready_.push_back(transfer);
  issue_scheduled_ = true;
  const Tick when = std::max(simulator_->Now(), next_issue);
  simulator_->ScheduleAt(when, [this]() { Issue(); });
}

void IoBus::ScheduleIssue() {
  if (issue_scheduled_ || ready_.empty()) return;
  issue_scheduled_ = true;
  const Tick when = std::max(simulator_->Now(), next_free_slot_);
  simulator_->ScheduleAt(when, [this]() { Issue(); });
}

void IoBus::Issue() {
  issue_scheduled_ = false;
  if (ready_.empty()) return;

  DmaTransfer* transfer = ready_.front();
  ready_.pop_front();

  const std::int64_t chunk =
      std::min<std::int64_t>(chunk_bytes_, transfer->RemainingToIssue());
  DMASIM_CHECK_GT(chunk, 0);
  const bool first = transfer->FirstChunk();
  transfer->issued_bytes += chunk;
  next_free_slot_ = simulator_->Now() + slot_time_;
  ++chunks_issued_;

  DMASIM_CHECK_MSG(sink_ != nullptr, "bus has no request sink");
  sink_->DeliverChunk(transfer, chunk, first);

  ScheduleIssue();
}

}  // namespace dmasim
