// ASCII table printing for benchmark harnesses.
//
// Every bench binary regenerates one of the paper's tables or figures as a
// plain-text table; this class keeps the output format uniform.
#ifndef DMASIM_STATS_TABLE_H_
#define DMASIM_STATS_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace dmasim {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  // Appends a row; must have exactly as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  // Renders the table with a separator line under the header.
  void Print(std::ostream& os) const;

  int RowCount() const { return static_cast<int>(rows_.size()); }

  // Formats a double with `digits` decimal places.
  static std::string Num(double value, int digits = 2);
  // Formats a fraction as a percentage string, e.g. "38.6%".
  static std::string Percent(double fraction, int digits = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dmasim

#endif  // DMASIM_STATS_TABLE_H_
