#include "stats/table.h"

#include <algorithm>
#include <cstdio>

#include "util/check.h"

namespace dmasim {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  DMASIM_EXPECTS(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  DMASIM_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << (i == 0 ? "| " : " | ");
      os << row[i];
      os << std::string(widths[i] - row[i].size(), ' ');
    }
    os << " |\n";
  };

  print_row(headers_);
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    os << (i == 0 ? "|-" : "-|-") << std::string(widths[i], '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::Num(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

std::string TablePrinter::Percent(double fraction, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f%%", digits, fraction * 100.0);
  return buffer;
}

}  // namespace dmasim
