// Memory energy bookkeeping.
//
// Energy is attributed to the same buckets the paper's Figures 2(b) and 6
// report:
//   * ActiveServing      -- chip actively transferring data.
//   * ActiveIdleDma      -- chip active but idle between DMA-memory
//                           requests of in-flight transfers (the waste the
//                           paper's techniques attack).
//   * ActiveIdleThreshold-- chip active and idle with no in-flight
//                           transfer, waiting for the idle threshold of the
//                           low-level policy to expire.
//   * Transition         -- power-mode transition energy.
//   * LowPower           -- standby / nap / powerdown residency.
//   * Migration          -- page-migration copies (DMA-TA-PL only).
#ifndef DMASIM_STATS_ENERGY_H_
#define DMASIM_STATS_ENERGY_H_

#include <array>
#include <string_view>

#include "util/check.h"
#include "util/units.h"

namespace dmasim {

enum class EnergyBucket : int {
  kActiveServing = 0,
  kActiveIdleDma,
  kActiveIdleThreshold,
  kTransition,
  kLowPower,
  kMigration,
};

inline constexpr int kEnergyBucketCount = 6;

constexpr std::string_view EnergyBucketName(EnergyBucket bucket) {
  switch (bucket) {
    case EnergyBucket::kActiveServing:
      return "ActiveServing";
    case EnergyBucket::kActiveIdleDma:
      return "ActiveIdleDma";
    case EnergyBucket::kActiveIdleThreshold:
      return "ActiveIdleThreshold";
    case EnergyBucket::kTransition:
      return "Transition";
    case EnergyBucket::kLowPower:
      return "LowPowerModes";
    case EnergyBucket::kMigration:
      return "Migration";
  }
  return "?";
}

// Per-bucket energy. Value type; aggregates across chips by +=. Buckets
// accumulate in bucket-index order, so the Total() summation order is
// deterministic and the stored doubles are bit-stable across runs.
class EnergyBreakdown {
 public:
  void Add(EnergyBucket bucket, JoulesEnergy joules) {
    DMASIM_EXPECTS(joules >= JoulesEnergy(0.0));
    joules_[static_cast<int>(bucket)] += joules;
  }

  JoulesEnergy Of(EnergyBucket bucket) const {
    return joules_[static_cast<int>(bucket)];
  }

  JoulesEnergy Total() const {
    JoulesEnergy total;
    for (JoulesEnergy j : joules_) total += j;
    return total;
  }

  // Fraction of total energy in `bucket`; 0 for an empty breakdown.
  double Fraction(EnergyBucket bucket) const {
    const JoulesEnergy total = Total();
    return total > JoulesEnergy(0.0) ? Of(bucket) / total : 0.0;
  }

  EnergyBreakdown& operator+=(const EnergyBreakdown& other) {
    for (int i = 0; i < kEnergyBucketCount; ++i) {
      joules_[i] += other.joules_[i];
    }
    return *this;
  }

 private:
  std::array<JoulesEnergy, kEnergyBucketCount> joules_ = {};
};

inline EnergyBreakdown operator+(EnergyBreakdown a, const EnergyBreakdown& b) {
  a += b;
  return a;
}

}  // namespace dmasim

#endif  // DMASIM_STATS_ENERGY_H_
