// Memory energy bookkeeping.
//
// Energy is attributed to the same buckets the paper's Figures 2(b) and 6
// report:
//   * ActiveServing      -- chip actively transferring data.
//   * ActiveIdleDma      -- chip active but idle between DMA-memory
//                           requests of in-flight transfers (the waste the
//                           paper's techniques attack).
//   * ActiveIdleThreshold-- chip active and idle with no in-flight
//                           transfer, waiting for the idle threshold of the
//                           low-level policy to expire.
//   * Transition         -- power-mode transition energy.
//   * LowPower           -- standby / nap / powerdown residency.
//   * Migration          -- page-migration copies (DMA-TA-PL only).
#ifndef DMASIM_STATS_ENERGY_H_
#define DMASIM_STATS_ENERGY_H_

#include <array>
#include <string_view>

#include "util/check.h"

namespace dmasim {

enum class EnergyBucket : int {
  kActiveServing = 0,
  kActiveIdleDma,
  kActiveIdleThreshold,
  kTransition,
  kLowPower,
  kMigration,
};

inline constexpr int kEnergyBucketCount = 6;

constexpr std::string_view EnergyBucketName(EnergyBucket bucket) {
  switch (bucket) {
    case EnergyBucket::kActiveServing:
      return "ActiveServing";
    case EnergyBucket::kActiveIdleDma:
      return "ActiveIdleDma";
    case EnergyBucket::kActiveIdleThreshold:
      return "ActiveIdleThreshold";
    case EnergyBucket::kTransition:
      return "Transition";
    case EnergyBucket::kLowPower:
      return "LowPowerModes";
    case EnergyBucket::kMigration:
      return "Migration";
  }
  return "?";
}

// Per-bucket energy in joules. Value type; aggregates across chips by +=.
class EnergyBreakdown {
 public:
  void Add(EnergyBucket bucket, double joules) {
    DMASIM_EXPECTS(joules >= 0.0);
    joules_[static_cast<int>(bucket)] += joules;
  }

  double Of(EnergyBucket bucket) const {
    return joules_[static_cast<int>(bucket)];
  }

  double Total() const {
    double total = 0.0;
    for (double j : joules_) total += j;
    return total;
  }

  // Fraction of total energy in `bucket`; 0 for an empty breakdown.
  double Fraction(EnergyBucket bucket) const {
    const double total = Total();
    return total > 0.0 ? Of(bucket) / total : 0.0;
  }

  EnergyBreakdown& operator+=(const EnergyBreakdown& other) {
    for (int i = 0; i < kEnergyBucketCount; ++i) {
      joules_[i] += other.joules_[i];
    }
    return *this;
  }

 private:
  std::array<double, kEnergyBucketCount> joules_ = {};
};

inline EnergyBreakdown operator+(EnergyBreakdown a, const EnergyBreakdown& b) {
  a += b;
  return a;
}

}  // namespace dmasim

#endif  // DMASIM_STATS_ENERGY_H_
