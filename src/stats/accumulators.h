// Small statistics accumulators used throughout the simulator.
#ifndef DMASIM_STATS_ACCUMULATORS_H_
#define DMASIM_STATS_ACCUMULATORS_H_

#include <algorithm>
#include <cstdint>
#include <limits>

#include "util/check.h"

namespace dmasim {

// Running mean / min / max over double-valued samples.
class RunningMean {
 public:
  void Add(double sample) {
    ++count_;
    sum_ += sample;
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }

  void Merge(const RunningMean& other) {
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  std::uint64_t Count() const { return count_; }
  double Sum() const { return sum_; }
  double Mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  double Min() const { return count_ == 0 ? 0.0 : min_; }
  double Max() const { return count_ == 0 ? 0.0 : max_; }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Tracks total time spent in each of a small set of states, given
// timestamped state changes. Template parameter is the number of states.
template <int kStates>
class StateTimeTracker {
 public:
  explicit StateTimeTracker(int initial_state = 0, std::int64_t start = 0)
      : state_(initial_state), since_(start) {
    DMASIM_EXPECTS(initial_state >= 0 && initial_state < kStates);
  }

  // Switches to `state` at time `now`, accounting elapsed time to the
  // previous state. `now` must be monotonically non-decreasing.
  void Switch(int state, std::int64_t now) {
    DMASIM_EXPECTS(state >= 0 && state < kStates);
    DMASIM_EXPECTS(now >= since_);
    time_in_[state_] += now - since_;
    state_ = state;
    since_ = now;
  }

  // Flushes elapsed time into the current state without changing it.
  void Sync(std::int64_t now) { Switch(state_, now); }

  int CurrentState() const { return state_; }
  std::int64_t TimeIn(int state) const {
    DMASIM_EXPECTS(state >= 0 && state < kStates);
    return time_in_[state];
  }

 private:
  int state_;
  std::int64_t since_;
  std::int64_t time_in_[kStates] = {};
};

}  // namespace dmasim

#endif  // DMASIM_STATS_ACCUMULATORS_H_
