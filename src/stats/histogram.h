// Fixed-bin histogram with quantile queries.
#ifndef DMASIM_STATS_HISTOGRAM_H_
#define DMASIM_STATS_HISTOGRAM_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace dmasim {

// Histogram over [lo, hi) with uniform bins; samples outside the range
// (infinities included) are clamped into the first/last bin. NaN samples
// carry no ordering information, so they are counted separately in
// `NanCount()` and excluded from the bins and `TotalCount()`. Suitable
// for latency distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, int bins) : lo_(lo), hi_(hi), counts_(bins) {
    DMASIM_EXPECTS(bins > 0);
    DMASIM_EXPECTS(hi > lo);
  }

  void Add(double sample) {
    if (std::isnan(sample)) {
      ++nan_count_;
      return;
    }
    // Clamp in the double domain: casting a non-finite or out-of-int-range
    // scaled value to int is undefined behavior, so the comparisons must
    // happen before any cast.
    const double bins = static_cast<double>(counts_.size());
    const double scaled = (sample - lo_) / (hi_ - lo_) * bins;
    std::size_t bin = 0;
    if (scaled >= bins) {
      bin = counts_.size() - 1;
    } else if (scaled > 0.0) {
      bin = static_cast<std::size_t>(scaled);
    }
    ++counts_[bin];
    ++total_;
  }

  std::uint64_t TotalCount() const { return total_; }
  std::uint64_t NanCount() const { return nan_count_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  int BinCount() const { return static_cast<int>(counts_.size()); }
  std::uint64_t BinValue(int bin) const {
    DMASIM_EXPECTS(bin >= 0 && bin < BinCount());
    return counts_[static_cast<std::size_t>(bin)];
  }

  // Midpoint of a bin.
  double BinCenter(int bin) const {
    const double width = (hi_ - lo_) / BinCount();
    return lo_ + (bin + 0.5) * width;
  }

  // Approximate quantile (q in [0, 1]) by bin midpoint. Returns lo_ for an
  // empty histogram.
  double Quantile(double q) const {
    DMASIM_EXPECTS(q >= 0.0 && q <= 1.0);
    if (total_ == 0) return lo_;
    const std::uint64_t target =
        static_cast<std::uint64_t>(q * static_cast<double>(total_ - 1));
    std::uint64_t seen = 0;
    for (int bin = 0; bin < BinCount(); ++bin) {
      seen += counts_[static_cast<std::size_t>(bin)];
      if (seen > target) return BinCenter(bin);
    }
    return BinCenter(BinCount() - 1);
  }

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t nan_count_ = 0;
};

}  // namespace dmasim

#endif  // DMASIM_STATS_HISTOGRAM_H_
