// Fixed-bin histogram with quantile queries.
#ifndef DMASIM_STATS_HISTOGRAM_H_
#define DMASIM_STATS_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace dmasim {

// Histogram over [lo, hi) with uniform bins; samples outside the range are
// clamped into the first/last bin. Suitable for latency distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, int bins) : lo_(lo), hi_(hi), counts_(bins) {
    DMASIM_EXPECTS(bins > 0);
    DMASIM_EXPECTS(hi > lo);
  }

  void Add(double sample) {
    int bin = static_cast<int>((sample - lo_) / (hi_ - lo_) *
                               static_cast<double>(counts_.size()));
    if (bin < 0) bin = 0;
    if (bin >= static_cast<int>(counts_.size())) {
      bin = static_cast<int>(counts_.size()) - 1;
    }
    ++counts_[static_cast<std::size_t>(bin)];
    ++total_;
  }

  std::uint64_t TotalCount() const { return total_; }
  int BinCount() const { return static_cast<int>(counts_.size()); }
  std::uint64_t BinValue(int bin) const {
    DMASIM_EXPECTS(bin >= 0 && bin < BinCount());
    return counts_[static_cast<std::size_t>(bin)];
  }

  // Midpoint of a bin.
  double BinCenter(int bin) const {
    const double width = (hi_ - lo_) / BinCount();
    return lo_ + (bin + 0.5) * width;
  }

  // Approximate quantile (q in [0, 1]) by bin midpoint. Returns lo_ for an
  // empty histogram.
  double Quantile(double q) const {
    DMASIM_EXPECTS(q >= 0.0 && q <= 1.0);
    if (total_ == 0) return lo_;
    const std::uint64_t target =
        static_cast<std::uint64_t>(q * static_cast<double>(total_ - 1));
    std::uint64_t seen = 0;
    for (int bin = 0; bin < BinCount(); ++bin) {
      seen += counts_[static_cast<std::size_t>(bin)];
      if (seen > target) return BinCenter(bin);
    }
    return BinCenter(BinCount() - 1);
  }

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace dmasim

#endif  // DMASIM_STATS_HISTOGRAM_H_
