// fleet_scenario — a production-scale fleet on the sharded kernel.
//
// Simulates many memory-controller domains (default 32 domains x 32
// chips = 1024 chips, 32768 client streams each = ~1M streams) with a
// fraction of streams homed on remote domains, and executes the whole
// fleet with the conservative-lookahead sharded engine. The run is
// bit-identical for every --sim-threads value; the printed fingerprint
// is the proof the determinism suite pins.
//
// Examples:
//   fleet_scenario --sim-threads 8
//   fleet_scenario --domains 8 --duration-ms 50 --workload dss
//   fleet_scenario --sim-threads 4 --fingerprint-only
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "server/fleet_driver.h"
#include "trace/workloads.h"

namespace {

using namespace dmasim;

[[noreturn]] void Fail(const std::string& message) {
  std::cerr << "fleet_scenario: " << message << "\n"
            << "Run with --help for usage.\n";
  std::exit(2);
}

void PrintUsage() {
  std::cout <<
      R"(Usage: fleet_scenario [options]
  --domains N          memory-controller domains / engine shards
                       (default: 32)
  --sim-threads N      engine worker threads (default: 1 = serial;
                       results are bit-identical for any value)
  --duration-ms N      simulated milliseconds (default: 20)
  --workload NAME      per-domain workload: oltp-st, synth-st, oltp-db,
                       synth-db, dss (default: oltp-st)
  --chips N            memory chips per domain (default: 32)
  --streams N          client streams per domain (default: 32768)
  --remote-fraction F  fraction of streams homed remotely
                       (default: 0.05)
  --remote-latency-us N  one-way fleet hop, also the engine lookahead
                       (default: 20)
  --seed N             workload seed (default: preset)
  --fingerprint-only   print only the run fingerprint (for scripting)

Determinism proof kit (DESIGN.md section 15):
  --sched-fuzz-seed N  perturb worker scheduling from seed N; requires a
                       -DDMASIM_SCHED_FUZZ=1 build (the run must stay
                       bit-identical to seed 0)
  --engine-fault NAME  seeded protocol violation: none, skip-barrier-sort,
                       deliver-early (CI divergence checks only)
  --window-digests FILE
                       record one digest per engine window and write them
                       to FILE (one hex value per line)
  --compare-window-digests FILE
                       compare this run's window digests against FILE and
                       report the first mismatching window (exit 3 on
                       divergence)
  --help               this text
)";
}

WorkloadSpec WorkloadByFlag(const std::string& flag) {
  if (flag == "oltp-st") return OltpStorageSpec();
  if (flag == "synth-st") return SyntheticStorageSpec();
  if (flag == "oltp-db") return OltpDatabaseSpec();
  if (flag == "synth-db") return SyntheticDatabaseSpec();
  if (flag == "dss") return DssStorageSpec();
  Fail("unknown workload '" + flag + "'");
}

double ParseDouble(const std::string& text) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') Fail("bad number '" + text + "'");
  return value;
}

void WriteWindowDigests(const std::vector<std::uint64_t>& digests,
                        const std::string& path) {
  std::ofstream out(path);
  if (!out.good()) Fail("cannot write '" + path + "'");
  for (std::uint64_t digest : digests) {
    out << std::hex << std::setw(16) << std::setfill('0') << digest << "\n";
  }
}

// Returns the process exit code: 0 on a match, 3 on divergence (with the
// first mismatching window on stdout, which is what the CI sched-fuzz
// smoke greps for).
int CompareWindowDigests(const std::vector<std::uint64_t>& digests,
                         const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) Fail("cannot read '" + path + "'");
  std::vector<std::uint64_t> baseline;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    baseline.push_back(std::stoull(line, nullptr, 16));
  }
  const std::size_t windows = std::min(digests.size(), baseline.size());
  for (std::size_t window = 0; window < windows; ++window) {
    if (digests[window] != baseline[window]) {
      std::cout << "window digests diverge at window " << window << " (run "
                << std::hex << std::setw(16) << std::setfill('0')
                << digests[window] << " vs baseline " << std::setw(16)
                << baseline[window] << ")\n";
      return 3;
    }
  }
  if (digests.size() != baseline.size()) {
    std::cout << "window digests diverge at window " << windows
              << " (run has " << std::dec << digests.size()
              << " windows, baseline " << baseline.size() << ")\n";
    return 3;
  }
  std::cout << "window digests match (" << std::dec << windows
            << " windows)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  FleetOptions options;
  options.domains = 32;
  options.streams_per_domain = 32768;
  std::string workload_flag = "oltp-st";
  double duration_ms = 20.0;
  double seed = -1.0;
  bool fingerprint_only = false;
  std::string digests_out_path;
  std::string digests_baseline_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) Fail("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else if (arg == "--domains") {
      options.domains = static_cast<int>(ParseDouble(next()));
      if (options.domains < 1) Fail("--domains must be >= 1");
    } else if (arg == "--sim-threads") {
      options.sim_threads = static_cast<int>(ParseDouble(next()));
      if (options.sim_threads < 1) Fail("--sim-threads must be >= 1");
    } else if (arg == "--duration-ms") {
      duration_ms = ParseDouble(next());
      if (duration_ms <= 0.0) Fail("--duration-ms must be > 0");
    } else if (arg == "--workload") {
      workload_flag = next();
    } else if (arg == "--chips") {
      options.base.memory.chips = static_cast<int>(ParseDouble(next()));
    } else if (arg == "--streams") {
      options.streams_per_domain =
          static_cast<std::uint64_t>(ParseDouble(next()));
    } else if (arg == "--remote-fraction") {
      options.remote_fraction = ParseDouble(next());
    } else if (arg == "--remote-latency-us") {
      options.remote_latency =
          static_cast<Tick>(ParseDouble(next()) * kMicrosecond);
    } else if (arg == "--seed") {
      seed = ParseDouble(next());
    } else if (arg == "--fingerprint-only") {
      fingerprint_only = true;
    } else if (arg == "--sched-fuzz-seed") {
      options.sched_fuzz_seed = static_cast<std::uint64_t>(ParseDouble(next()));
    } else if (arg == "--engine-fault") {
      const std::string name = next();
      if (!ParseEngineFault(name, &options.engine_fault)) {
        Fail("unknown engine fault '" + name + "'");
      }
    } else if (arg == "--window-digests") {
      digests_out_path = next();
      options.record_window_digests = true;
    } else if (arg == "--compare-window-digests") {
      digests_baseline_path = next();
      options.record_window_digests = true;
    } else {
      Fail("unknown option '" + arg + "'");
    }
  }

  options.workload = WorkloadByFlag(workload_flag);
  options.workload.duration = static_cast<Tick>(duration_ms * kMillisecond);
  if (seed >= 0.0) options.workload.seed = static_cast<std::uint64_t>(seed);

  const auto wall_start = std::chrono::steady_clock::now();
  const FleetResults fleet = RunFleet(options);
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  if (!digests_out_path.empty()) {
    WriteWindowDigests(fleet.window_digests, digests_out_path);
  }
  if (!digests_baseline_path.empty()) {
    const int compare_exit =
        CompareWindowDigests(fleet.window_digests, digests_baseline_path);
    if (compare_exit != 0) return compare_exit;
  }

  if (fingerprint_only) {
    std::cout << fleet.Fingerprint() << "\n";
    return 0;
  }

  const double events_per_second =
      wall_seconds > 0.0
          ? static_cast<double>(fleet.stepped_events) / wall_seconds
          : 0.0;
  std::cout << "fleet: " << options.domains << " domains x "
            << options.base.memory.chips << " chips ("
            << options.domains * options.base.memory.chips
            << " chips total), "
            << options.domains * options.streams_per_domain
            << " client streams, workload " << options.workload.name << "\n"
            << "engine: " << options.sim_threads << " thread(s), "
            << fleet.engine.windows << " windows, "
            << fleet.engine.delivered_messages << " cross-shard messages, "
            << fleet.engine.mailbox_spills << " mailbox spills\n"
            << "events: " << fleet.stepped_events << " in " << wall_seconds
            << " s wall (" << events_per_second << " events/s)\n"
            << "remote reads: " << fleet.remote_sent << " sent, "
            << fleet.remote_completed << " completed, mean response "
            << fleet.remote_response.Mean() / kMicrosecond << " us\n"
            << "local reads: mean response "
            << fleet.client_response.Mean() / kMicrosecond << " us over "
            << fleet.client_response.Count() << " requests\n"
            << "energy: " << fleet.energy.Total().joules() << " J\n"
            << "fingerprint: " << fleet.Fingerprint() << "\n";
  return 0;
}
