// Storage-server scenario (the paper's Fig. 1 environment, closed loop):
// a SAN-attached storage server whose buffer cache is smaller than the
// working set, so misses come from real LRU behaviour rather than a
// forced ratio. Compares baseline and DMA-TA-PL energy and shows the
// request-path statistics.
//
// Usage: storage_server [duration_ms] [cache_pages]
#include <cstdlib>
#include <iostream>

#include "server/simulation_driver.h"
#include "stats/table.h"
#include "trace/workloads.h"

int main(int argc, char** argv) {
  using namespace dmasim;

  const Tick duration =
      (argc > 1 ? std::atoll(argv[1]) : 300) * kMillisecond;
  const std::uint64_t cache_pages =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : (1ULL << 15);

  WorkloadSpec spec = OltpStorageSpec();
  spec.duration = duration;
  spec.miss_ratio = 0.0;  // Misses come from the cache in this example.
  const Trace trace = GenerateWorkload(spec);

  SimulationOptions options;
  options.server.forced_miss_ratio = -1.0;  // LRU-driven misses.
  options.server.cache_pages = cache_pages;

  std::cout << "storage server: " << duration / kMillisecond << " ms of "
            << spec.name << " traffic, " << cache_pages
            << "-page buffer cache\n\n";

  const SimulationResults baseline =
      RunTrace(trace, /*miss_ratio=*/-1.0, spec.duration, options, spec.name);
  const CpCalibration calibration = Calibrate(baseline);

  SimulationOptions dma_aware = options;
  dma_aware.memory.dma.ta.enabled = true;
  dma_aware.memory.dma.ta.mu = calibration.MuFor(0.10);
  dma_aware.memory.dma.pl.enabled = true;
  const SimulationResults tuned =
      RunTrace(trace, -1.0, spec.duration, dma_aware, spec.name);

  TablePrinter table({"metric", "baseline", "DMA-TA-PL"});
  table.AddRow({"energy (mJ)",
                TablePrinter::Num(baseline.energy.Total().joules() * 1e3, 2),
                TablePrinter::Num(tuned.energy.Total().joules() * 1e3, 2)});
  table.AddRow({"energy savings", "-",
                TablePrinter::Percent(tuned.EnergySavingsVs(baseline))});
  table.AddRow(
      {"avg response (us)",
       TablePrinter::Num(baseline.client_response.Mean() / kMicrosecond, 1),
       TablePrinter::Num(tuned.client_response.Mean() / kMicrosecond, 1)});
  table.AddRow({"response degradation", "-",
                TablePrinter::Percent(tuned.ResponseDegradationVs(baseline))});
  table.AddRow({"utilization factor",
                TablePrinter::Num(baseline.utilization_factor, 3),
                TablePrinter::Num(tuned.utilization_factor, 3)});
  table.AddRow({"buffer-cache hits", std::to_string(baseline.server.hits),
                std::to_string(tuned.server.hits)});
  table.AddRow({"buffer-cache misses", std::to_string(baseline.server.misses),
                std::to_string(tuned.server.misses)});
  table.AddRow({"page migrations", "0",
                std::to_string(tuned.controller.migrations)});
  table.Print(std::cout);

  std::cout << "\nThe cache hit ratio is workload-determined here; shrink\n"
               "the cache (second argument) to push more disk DMA traffic\n"
               "through the memory system.\n";
  return 0;
}
