// dmasim_sweep — declarative design-space sweeps from the command line.
//
// Expands {workload x scheme x CP-Limit x policy x chips x buses x seed}
// into a run grid, executes it on all hardware threads (each run owns an
// isolated simulator; results are independent of the thread count), and
// emits a JSON artifact plus a human summary table.
//
// Examples:
//   dmasim_sweep --workloads oltp-st --schemes ta,ta-pl2
//                --cp-limits 0.02,0.05,0.10 --out fig5_oltp.json
//   dmasim_sweep --workloads synth-st --schemes ta-pl2 --chips 16,32,64
//                --seeds 1,2,3 --threads 4 --ndjson
//   dmasim_sweep --list
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "audit/audit_config.h"
#include "exp/result_sink.h"
#include "exp/sweep_runner.h"
#include "exp/thread_pool.h"
#include "mon/scheme_parser.h"
#include "obs/obs_config.h"
#include "trace/workloads.h"

namespace {

using namespace dmasim;

struct NamedWorkload {
  const char* flag;
  WorkloadSpec (*make)();
};

const NamedWorkload kWorkloads[] = {
    {"oltp-st", OltpStorageSpec},   {"synth-st", SyntheticStorageSpec},
    {"oltp-db", OltpDatabaseSpec},  {"synth-db", SyntheticDatabaseSpec},
    {"dss", DssStorageSpec},
};

struct NamedPolicy {
  const char* flag;
  PolicyKind kind;
};

const NamedPolicy kPolicies[] = {
    {"dynamic", PolicyKind::kDynamic},
    {"static-standby", PolicyKind::kStaticStandby},
    {"static-nap", PolicyKind::kStaticNap},
    {"static-powerdown", PolicyKind::kStaticPowerdown},
    {"always-active", PolicyKind::kAlwaysActive},
};

std::vector<std::string> SplitCommas(const std::string& csv) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    if (comma == std::string::npos) {
      if (start < csv.size()) parts.push_back(csv.substr(start));
      break;
    }
    if (comma > start) parts.push_back(csv.substr(start, comma - start));
    start = comma + 1;
  }
  return parts;
}

[[noreturn]] void Fail(const std::string& message) {
  std::cerr << "dmasim_sweep: " << message << "\n"
            << "Run with --help for usage.\n";
  std::exit(2);
}

void PrintUsage() {
  std::cout <<
      R"(Usage: dmasim_sweep [options]

Axes (comma-separated lists; the cross product is the run grid):
  --workloads LIST   oltp-st, synth-st, oltp-db, synth-db, dss
                     (default: oltp-st)
  --schemes LIST     baseline, ta, ta-plN (N = popularity groups, e.g.
                     ta-pl2). Baseline runs once per cell regardless.
                     (default: ta,ta-pl2)
  --cp-limits LIST   client-perceived degradation limits as fractions
                     (default: 0.10)
  --policies LIST    dynamic, static-standby, static-nap,
                     static-powerdown, always-active (default: dynamic)
  --chips LIST       memory chip counts (default: paper's 32)
  --buses LIST       I/O bus counts (default: paper's 3)
  --seeds LIST       RNG seeds for replicated runs (default: preset seed)
  --chip-model NAME  chip power/timing model: rdram (paper Table 1,
                     default), rdram-corrected (origin-aware step-down
                     billing), ddr4 (DDR4-2400 power-down/self-refresh
                     cascade), sectored (fine-grained activation).
                     ddr4 excludes static-nap/static-powerdown policies.

Execution:
  --duration-ms N    simulated milliseconds per run (default: preset)
  --threads N        worker threads (default: all hardware threads)
  --sim-threads N    worker threads inside each simulation's sharded
                     event kernel (default: 1 = serial; any value is
                     bit-identical — see DESIGN.md section 14)
  --name NAME        sweep name recorded in the artifact (default: sweep)
  --audit            run every simulation under the invariant auditor
                     (abort on violation; needs a library built with
                     -DDMASIM_AUDIT_LEVEL>=1, see DESIGN.md)
  --monitor          estimate page popularity online with the region
                     monitor (src/mon) instead of the oracle per-page
                     tracker; scheme labels gain a "+mon" suffix and the
                     artifact a per-run "monitor" section
  --scheme-file PATH load declarative DAMOS-style scheme rules from PATH
                     (one rule per line; see DESIGN.md section 13) and
                     apply them at every aggregation; implies --monitor

Output:
  --out PATH         write the full JSON artifact to PATH
  --metrics-out PATH write per-run observability metrics (counters,
                     gauges, histograms) to PATH; enables obs level 1
                     (needs a library built with -DDMASIM_OBS>=1)
  --trace-out PREFIX write one Chrome/Perfetto trace per run to
                     PREFIX-run<id>.json; enables obs level 2 (needs
                     -DDMASIM_OBS>=2; open in https://ui.perfetto.dev)
  --ndjson           stream one compact JSON line per finished run
  --no-table         suppress the human summary table
  --list             print known workloads/schemes/policies and exit
  --help             this text
)";
}

void PrintCatalog() {
  std::cout << "workloads:";
  for (const NamedWorkload& workload : kWorkloads) {
    std::cout << ' ' << workload.flag;
  }
  std::cout << "\npolicies:";
  for (const NamedPolicy& policy : kPolicies) {
    std::cout << ' ' << policy.flag;
  }
  std::cout << "\nschemes: baseline ta ta-plN (N = 1.." << 32 << ")\n";
}

WorkloadSpec WorkloadByFlag(const std::string& flag) {
  for (const NamedWorkload& workload : kWorkloads) {
    if (flag == workload.flag) return workload.make();
  }
  Fail("unknown workload '" + flag + "'");
}

PolicyKind PolicyByFlag(const std::string& flag) {
  for (const NamedPolicy& policy : kPolicies) {
    if (flag == policy.flag) return policy.kind;
  }
  Fail("unknown policy '" + flag + "'");
}

SchemeSpec SchemeByFlag(const std::string& flag) {
  if (flag == "baseline") return BaselineScheme();
  if (flag == "ta") return TaScheme();
  if (flag.rfind("ta-pl", 0) == 0) {
    const int groups = std::atoi(flag.c_str() + 5);
    if (groups < 1) Fail("bad popularity group count in '" + flag + "'");
    return TaPlScheme(groups);
  }
  Fail("unknown scheme '" + flag + "'");
}

double ParseDouble(const std::string& text) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    Fail("bad number '" + text + "'");
  }
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  ExperimentSpec spec;
  spec.schemes = {TaScheme(), TaPlScheme(2)};
  std::vector<std::string> workload_flags = {"oltp-st"};

  SweepOptions sweep_options;
  double duration_ms = 0.0;
  std::string out_path;
  std::string metrics_path;
  bool ndjson = false;
  bool table = true;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) Fail("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else if (arg == "--list") {
      PrintCatalog();
      return 0;
    } else if (arg == "--workloads") {
      workload_flags = SplitCommas(next());
    } else if (arg == "--schemes") {
      spec.schemes.clear();
      for (const std::string& flag : SplitCommas(next())) {
        spec.schemes.push_back(SchemeByFlag(flag));
      }
    } else if (arg == "--cp-limits") {
      spec.cp_limits.clear();
      for (const std::string& text : SplitCommas(next())) {
        spec.cp_limits.push_back(ParseDouble(text));
      }
    } else if (arg == "--policies") {
      spec.policies.clear();
      for (const std::string& flag : SplitCommas(next())) {
        spec.policies.push_back(PolicyByFlag(flag));
      }
    } else if (arg == "--chips") {
      for (const std::string& text : SplitCommas(next())) {
        spec.chip_counts.push_back(static_cast<int>(ParseDouble(text)));
      }
    } else if (arg == "--buses") {
      for (const std::string& text : SplitCommas(next())) {
        spec.bus_counts.push_back(static_cast<int>(ParseDouble(text)));
      }
    } else if (arg == "--seeds") {
      for (const std::string& text : SplitCommas(next())) {
        spec.seeds.push_back(
            static_cast<std::uint64_t>(ParseDouble(text)));
      }
    } else if (arg == "--chip-model") {
      const std::string name = next();
      const std::optional<ChipModelKind> kind = ParseChipModelKind(name);
      if (!kind.has_value()) {
        Fail("--chip-model needs rdram | rdram-corrected | ddr4 | sectored");
      }
      spec.base.memory.chip_model = *kind;
    } else if (arg == "--duration-ms") {
      duration_ms = ParseDouble(next());
    } else if (arg == "--threads") {
      sweep_options.threads = static_cast<int>(ParseDouble(next()));
    } else if (arg == "--sim-threads") {
      spec.base.sim_threads = static_cast<int>(ParseDouble(next()));
      if (spec.base.sim_threads < 1) Fail("--sim-threads must be >= 1");
    } else if (arg == "--name") {
      spec.name = next();
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--metrics-out") {
      metrics_path = next();
      if (spec.base.obs_level < 1) spec.base.obs_level = 1;
    } else if (arg == "--trace-out") {
      sweep_options.trace_out_prefix = next();
      spec.base.obs_level = 2;
    } else if (arg == "--audit") {
      spec.base.audit_level = 2;
    } else if (arg == "--monitor") {
      spec.base.memory.monitor.enabled = true;
    } else if (arg == "--scheme-file") {
      const std::string path = next();
      const SchemeParseResult parsed = ParseSchemeFile(path);
      if (!parsed.ok()) Fail(parsed.error);
      spec.base.memory.monitor.rules = parsed.rules;
      spec.base.memory.monitor.enabled = true;
    } else if (arg == "--ndjson") {
      ndjson = true;
    } else if (arg == "--no-table") {
      table = false;
    } else {
      Fail("unknown option '" + arg + "'");
    }
  }

  if (workload_flags.empty()) Fail("no workloads selected");
  if (spec.base.audit_level > 0 && kCompiledAuditLevel == 0) {
    std::cerr << "dmasim_sweep: warning: --audit has no effect, this build "
                 "has DMASIM_AUDIT_LEVEL=0\n";
  }
  if (spec.base.obs_level > kCompiledObsLevel) {
    std::cerr << "dmasim_sweep: warning: --metrics-out/--trace-out need a "
                 "library built with -DDMASIM_OBS>="
              << spec.base.obs_level << ", this build has DMASIM_OBS="
              << kCompiledObsLevel << "\n";
  }
  if (!out_path.empty()) {
    // Fail before the sweep runs, not after minutes of simulation.
    std::ofstream probe(out_path, std::ios::app);
    if (!probe.good()) Fail("cannot write to '" + out_path + "'");
  }
  for (const std::string& flag : workload_flags) {
    WorkloadSpec workload = WorkloadByFlag(flag);
    if (duration_ms > 0.0) {
      workload.duration = static_cast<Tick>(duration_ms * kMillisecond);
    }
    spec.workloads.push_back(std::move(workload));
  }

  SweepRunner runner(sweep_options);
  JsonFileSink json_sink(out_path);
  if (!out_path.empty()) runner.AddSink(&json_sink);
  MetricsFileSink metrics_sink(metrics_path);
  if (!metrics_path.empty()) runner.AddSink(&metrics_sink);
  NdjsonStreamSink ndjson_sink(&std::cout);
  if (ndjson) runner.AddSink(&ndjson_sink);
  SummaryTableSink table_sink(&std::cout);
  if (table) runner.AddSink(&table_sink);

  const SweepResults sweep = runner.Run(spec);
  if (!out_path.empty()) {
    std::cout << "artifact: " << out_path << '\n';
  }
  if (!metrics_path.empty()) {
    std::cout << "metrics: " << metrics_path << '\n';
  }
  return sweep.summary.failed == 0 ? 0 : 1;
}
