// DMA-TA vs. modern DRAM: does the paper's technique survive the move
// from RDRAM Table 1 to present-day chip power models?
//
// For each workload (OLTP and DSS storage) and each member of the chip
// power-model family (rdram, rdram-corrected, ddr4, sectored), runs the
// no-power-management baseline and calibrated DMA-TA, then reports the
// figure the paper leads with -- energy savings at bounded
// client-perceived degradation -- side by side across models. The DDR4
// runs rescale the I/O buses to one third of that chip's 4.8 GB/s
// bandwidth so the paper's 3x memory-to-bus ratio (and therefore the
// alignment quorum k = 3) is preserved and the comparison isolates the
// power model, not the topology.
//
// Usage: modern_memory_eval [duration_ms] [cp_limit] [--out FILE.json]
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "exp/json.h"
#include "server/simulation_driver.h"
#include "stats/table.h"
#include "trace/workloads.h"

int main(int argc, char** argv) {
  using namespace dmasim;

  Tick duration = 400 * kMillisecond;
  double cp_limit = 0.10;
  std::string out_path;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (positional == 0) {
      duration = std::atoll(argv[i]) * kMillisecond;
      ++positional;
    } else {
      cp_limit = std::atof(argv[i]);
    }
  }

  std::cout << "modern memory eval: " << duration / kMillisecond
            << " ms per run, CP-Limit " << cp_limit << "\n\n";

  std::vector<WorkloadSpec> workloads = {OltpStorageSpec(), DssStorageSpec()};
  for (WorkloadSpec& spec : workloads) spec.duration = duration;

  TablePrinter table({"workload", "chip model", "baseline mJ", "DMA-TA mJ",
                      "savings", "degradation", "k"});
  Json rows = Json::Array();

  for (const WorkloadSpec& spec : workloads) {
    const Trace trace = GenerateWorkload(spec);
    for (ChipModelKind kind : kAllChipModelKinds) {
      SimulationOptions options;
      options.memory.chip_model = kind;
      // Keep the paper's bus:memory bandwidth ratio under every model,
      // so k = ceil(Rm/Rb) stays 3 and DMA-TA's gathering geometry is
      // the one the paper analyzes.
      options.memory.bus_bandwidth = options.memory.MemoryBandwidth() / 3.0;

      const SimulationResults baseline = RunTrace(
          trace, spec.miss_ratio, spec.duration, options, spec.name);
      const CpCalibration calibration = Calibrate(baseline);

      SimulationOptions ta_options = options;
      ta_options.memory.dma.ta.enabled = true;
      ta_options.memory.dma.ta.mu = calibration.MuFor(cp_limit);
      const SimulationResults ta = RunTrace(
          trace, spec.miss_ratio, spec.duration, ta_options, spec.name);

      const double savings = ta.EnergySavingsVs(baseline);
      const double degradation = ta.ResponseDegradationVs(baseline);
      const int quorum = options.memory.AlignmentQuorum();
      const std::string model_name{ChipModelKindName(kind)};
      table.AddRow({spec.name, model_name,
                    TablePrinter::Num(baseline.energy.Total().joules() * 1e3,
                                      2),
                    TablePrinter::Num(ta.energy.Total().joules() * 1e3, 2),
                    TablePrinter::Percent(savings),
                    TablePrinter::Percent(degradation),
                    std::to_string(quorum)});

      Json row = Json::Object();
      row.Set("workload", spec.name);
      row.Set("chip_model", model_name);
      row.Set("baseline_joules", baseline.energy.Total().joules());
      row.Set("ta_joules", ta.energy.Total().joules());
      row.Set("energy_savings", savings);
      row.Set("response_degradation", degradation);
      row.Set("alignment_quorum", quorum);
      rows.Append(std::move(row));
    }
  }

  table.Print(std::cout);
  std::cout << "\nEach row is one figure point: the paper's headline\n"
               "energy-savings-at-bounded-degradation metric under that\n"
               "chip power model (buses rescaled to keep k fixed).\n";

  if (!out_path.empty()) {
    Json artifact = Json::Object();
    artifact.Set("benchmark", std::string("modern_memory_eval"));
    artifact.Set("duration_ms",
                 static_cast<double>(duration) / kMillisecond);
    artifact.Set("cp_limit", cp_limit);
    artifact.Set("rows", std::move(rows));
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "cannot write " << out_path << "\n";
      return 2;
    }
    out << artifact.Dump() << "\n";
    std::cout << "artifact: " << out_path << "\n";
  }
  return 0;
}
