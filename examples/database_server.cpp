// Database-server scenario (OLTP-Db): memory is accessed by both the
// processors (cache-line granularity, priority) and the network DMA
// engines. Sweeps the CP-Limit and prints the savings curve, illustrating
// how processor accesses temper the achievable savings (Sections 4.1.3
// and 5.4).
//
// Usage: database_server [duration_ms]
#include <cstdlib>
#include <iostream>

#include "server/simulation_driver.h"
#include "stats/table.h"
#include "trace/workloads.h"

int main(int argc, char** argv) {
  using namespace dmasim;

  WorkloadSpec spec = OltpDatabaseSpec();
  spec.duration = (argc > 1 ? std::atoll(argv[1]) : 150) * kMillisecond;
  const Trace trace = GenerateWorkload(spec);

  SimulationOptions options;
  options.server.request_compute_time = spec.request_compute_time;

  const SimulationResults baseline =
      RunTrace(trace, spec.miss_ratio, spec.duration, options, spec.name);
  const CpCalibration calibration = Calibrate(baseline);

  std::cout << "database server: " << spec.duration / kMillisecond
            << " ms of " << spec.name << " traffic ("
            << baseline.server.cpu_accesses << " CPU accesses, "
            << baseline.controller.transfers_completed
            << " DMA transfers)\n\n";

  TablePrinter table({"CP-Limit", "mu", "DMA-TA-PL savings", "degradation",
                      "utilization"});
  for (double cp : {0.02, 0.05, 0.10, 0.20}) {
    SimulationOptions tuned = options;
    tuned.memory.dma.ta.enabled = true;
    tuned.memory.dma.ta.mu = calibration.MuFor(cp);
    tuned.memory.dma.pl.enabled = true;
    const SimulationResults results =
        RunTrace(trace, spec.miss_ratio, spec.duration, tuned, spec.name);
    table.AddRow({TablePrinter::Percent(cp, 0),
                  TablePrinter::Num(tuned.memory.dma.ta.mu, 2),
                  TablePrinter::Percent(results.EnergySavingsVs(baseline)),
                  TablePrinter::Percent(
                      results.ResponseDegradationVs(baseline)),
                  TablePrinter::Num(results.utilization_factor, 3)});
  }
  table.Print(std::cout);

  std::cout << "\nCompared to the storage server, savings are lower: the\n"
               "processor accesses keep chips active between DMA requests\n"
               "and consume part of the idle energy the techniques target\n"
               "(the paper's Section 5.2 observation).\n";
  return 0;
}
