// dmasim_check: bounded explicit-state model checker for the DMA-TA
// protocol and the chip power-state machine (src/check).
//
// Explore mode (default) exhaustively enumerates every interleaving of
// request arrivals, CPU accesses, power-policy step-downs, and time
// advances for a small configuration, checking the protocol properties
// at every state. On a violation it delta-debugs the trace to a
// 1-minimal action sequence and (with --out) writes a replayable
// counterexample file.
//
//   ./build/examples/dmasim_check --chips 2 --buses 2 --depth 12
//   ./build/examples/dmasim_check --fault resync-skip --out ce.txt
//   ./build/examples/dmasim_check --replay ce.txt
//   ./build/examples/dmasim_check --seed-config config.txt
//
// Exit codes: 0 = explored clean (or --replay reproduced the recorded
// violation), 1 = explore found a violation (or --replay failed to
// reproduce), 2 = usage / input error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "check/counterexample.h"
#include "check/explorer.h"
#include "check/minimizer.h"
#include "check/shard_harness.h"

namespace {

using namespace dmasim::check;

void PrintUsage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: dmasim_check [options]\n"
      "  --chips N             memory chips, 1..4 (default 2)\n"
      "  --buses N             I/O buses, 1..3 (default 2)\n"
      "  --k N                 distinct-bus release quorum (default 2)\n"
      "  --depth N             max choice-sequence length (default 12)\n"
      "  --arrivals N          max DMA transfers injected (default 3)\n"
      "  --cpu N               max CPU accesses injected (default 1)\n"
      "  --epochs N            max epoch boundaries crossed (default 2)\n"
      "  --mu F                slack factor mu (default 1.0)\n"
      "  --t-request TICKS     one I/O-bus slot T (default 480000)\n"
      "  --transfer-requests N DMA-memory requests per transfer (default 4)\n"
      "  --epoch-length TICKS  checker epoch (default 1000000 = 1 us)\n"
      "  --policy NAME         dynamic-threshold | static-nap |\n"
      "                        static-powerdown (default static-nap)\n"
      "  --fault NAME          none | resync-skip | lost-release |\n"
      "                        stuck-deadline (default none)\n"
      "  --chip-model NAME     rdram | rdram-corrected | ddr4 | sectored\n"
      "                        (default rdram; ddr4 requires\n"
      "                        --policy dynamic-threshold)\n"
      "  --max-states N        visited-state cap (default 1048576)\n"
      "  --out FILE            write the minimized counterexample here\n"
      "  --no-minimize         keep the raw violating trace\n"
      "  --seed-config FILE    load 'key value' lines as the base config\n"
      "  --replay FILE         re-execute a counterexample file instead of\n"
      "                        exploring\n"
      "shard mode (barrier-interleaving exploration, DESIGN.md §15):\n"
      "  --shard               explore sharded-engine drain orders instead\n"
      "  --shard-shards N      shards, 2..3 (default 3)\n"
      "  --shard-events N      seed events per shard (default 2)\n"
      "  --shard-hops N        message relay depth (default 2)\n"
      "  --shard-lookahead T   engine lookahead in ticks (default 100)\n"
      "  --shard-windows N     barriers with enumerated drain order\n"
      "                        (default 4; runs = (shards!)^windows)\n"
      "  --engine-fault NAME   none | skip-barrier-sort | deliver-early\n"
      "  --shard --replay FILE re-execute a shard counterexample file\n");
}


bool ParseInt(const char* text, long long* out) {
  char* end = nullptr;
  *out = std::strtoll(text, &end, 10);
  return end != text && *end == '\0';
}

bool ParseDouble(const char* text, double* out) {
  char* end = nullptr;
  *out = std::strtod(text, &end);
  return end != text && *end == '\0';
}

int Fail(const std::string& message) {
  std::fprintf(stderr, "dmasim_check: %s\n", message.c_str());
  return 2;
}

int RunShardMode(ShardCheckConfig config, const std::string& replay_path,
                 const std::string& out_path, bool minimize) {
  if (!replay_path.empty()) {
    ShardCounterexample ce;
    std::string error;
    if (!ReadShardCounterexampleFile(replay_path, &ce, &error)) {
      return Fail(replay_path + ": " + error);
    }
    std::string observed;
    const bool reproduced = ReplayShardCounterexample(ce, &observed);
    std::printf("shard replay of %s (%zu scripted barriers, fault %s):\n"
                "  recorded  %s\n  observed  %s\n",
                replay_path.c_str(), ce.perms.size(),
                EngineFaultName(ce.config.fault), ce.property.c_str(),
                observed.c_str());
    if (!reproduced) {
      std::printf("VIOLATION DID NOT REPRODUCE\n");
      return 1;
    }
    std::printf("reproduced\n");
    return 0;
  }

  std::printf(
      "dmasim_check --shard: shards=%d events=%d hops=%d lookahead=%lld "
      "windows=%d fault=%s\n",
      config.shards, config.events_per_shard, config.max_hops,
      static_cast<long long>(config.lookahead), config.max_choice_windows,
      EngineFaultName(config.fault));

  const ShardExploreResult result = ExploreShardInterleavings(config);
  std::printf(
      "explored %llu interleavings (%llu barriers, %llu choice windows, "
      "%llu distinct fingerprints)\n",
      static_cast<unsigned long long>(result.stats.runs),
      static_cast<unsigned long long>(result.stats.barriers),
      static_cast<unsigned long long>(result.stats.choice_windows),
      static_cast<unsigned long long>(result.stats.distinct_fingerprints));

  if (!result.violation_found) {
    std::printf("no violations (canonical fingerprint %016llx)\n",
                static_cast<unsigned long long>(result.canonical_fingerprint));
    return 0;
  }

  std::printf("VIOLATION of %s\n  %s\n  raw trace: %zu scripted barriers\n",
              result.violation.property.c_str(),
              result.violation.message.c_str(),
              result.violation.perms.size());
  ShardTrace perms = result.violation.perms;
  if (minimize && !perms.empty()) {
    perms = MinimizeShardTrace(config, perms, result.violation.property);
    std::printf("  minimized: %zu scripted barriers\n", perms.size());
  }
  for (std::size_t w = 0; w < perms.size(); ++w) {
    std::vector<int> order;
    NthShardPermutation(config.shards, perms[w], &order);
    std::string text;
    for (int shard : order) {
      if (!text.empty()) text += ",";
      text += std::to_string(shard);
    }
    std::printf("    barrier %zu: drain order [%s]\n", w, text.c_str());
  }

  if (!out_path.empty()) {
    ShardCounterexample ce;
    ce.config = config;
    ce.property = result.violation.property;
    ce.message = result.violation.message;
    ce.perms = perms;
    std::string error;
    if (!WriteShardCounterexampleFile(ce, out_path, &error)) {
      return Fail(error);
    }
    std::printf("counterexample written to %s\n", out_path.c_str());
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  CheckerConfig config;
  std::uint64_t max_states = 1u << 20;
  std::string out_path;
  std::string replay_path;
  bool minimize = true;
  bool shard_mode = false;
  ShardCheckConfig shard_config;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    long long n = 0;
    if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout);
      return 0;
    } else if (arg == "--no-minimize") {
      minimize = false;
    } else if (arg == "--shard") {
      shard_mode = true;
    } else if (arg == "--engine-fault") {
      const char* name = value();
      if (name == nullptr ||
          !dmasim::ParseEngineFault(name, &shard_config.fault)) {
        return Fail("--engine-fault needs none | skip-barrier-sort | "
                    "deliver-early");
      }
    } else if (arg == "--seed-config") {
      const char* path = value();
      if (path == nullptr) return Fail("--seed-config needs a file");
      std::string error;
      if (!ReadConfigFile(path, &config, &error)) {
        return Fail(std::string(path) + ": " + error);
      }
    } else if (arg == "--replay") {
      const char* path = value();
      if (path == nullptr) return Fail("--replay needs a file");
      replay_path = path;
    } else if (arg == "--out") {
      const char* path = value();
      if (path == nullptr) return Fail("--out needs a file");
      out_path = path;
    } else if (arg == "--policy") {
      const char* name = value();
      if (name == nullptr || !ParseCheckPolicy(name, &config.policy)) {
        return Fail("--policy needs dynamic-threshold | static-nap | "
                    "static-powerdown");
      }
    } else if (arg == "--fault") {
      const char* name = value();
      if (name == nullptr || !ParseCheckFault(name, &config.fault)) {
        return Fail("--fault needs none | resync-skip | lost-release | "
                    "stuck-deadline");
      }
    } else if (arg == "--chip-model") {
      const char* name = value();
      const std::optional<dmasim::ChipModelKind> kind =
          name == nullptr ? std::nullopt : dmasim::ParseChipModelKind(name);
      if (!kind.has_value()) {
        return Fail("--chip-model needs rdram | rdram-corrected | ddr4 | "
                    "sectored");
      }
      config.chip_model = *kind;
    } else if (arg == "--mu") {
      const char* text = value();
      if (text == nullptr || !ParseDouble(text, &config.mu)) {
        return Fail("--mu needs a number");
      }
    } else {
      const char* text = value();
      if (text == nullptr || !ParseInt(text, &n)) {
        return Fail("unknown or incomplete option \"" + arg +
                    "\" (see --help)");
      }
      if (arg == "--chips") {
        config.chips = static_cast<int>(n);
      } else if (arg == "--buses") {
        config.buses = static_cast<int>(n);
      } else if (arg == "--k") {
        config.k = static_cast<int>(n);
      } else if (arg == "--depth") {
        config.max_depth = static_cast<int>(n);
      } else if (arg == "--arrivals") {
        config.max_arrivals = static_cast<int>(n);
      } else if (arg == "--cpu") {
        config.max_cpu_accesses = static_cast<int>(n);
      } else if (arg == "--epochs") {
        config.max_epochs = static_cast<int>(n);
      } else if (arg == "--t-request") {
        config.t_request = n;
      } else if (arg == "--transfer-requests") {
        config.transfer_requests = n;
      } else if (arg == "--epoch-length") {
        config.epoch_length = n;
      } else if (arg == "--max-states") {
        max_states = static_cast<std::uint64_t>(n);
      } else if (arg == "--shard-shards") {
        shard_config.shards = static_cast<int>(n);
      } else if (arg == "--shard-events") {
        shard_config.events_per_shard = static_cast<int>(n);
      } else if (arg == "--shard-hops") {
        shard_config.max_hops = static_cast<int>(n);
      } else if (arg == "--shard-lookahead") {
        shard_config.lookahead = n;
      } else if (arg == "--shard-windows") {
        shard_config.max_choice_windows = static_cast<int>(n);
      } else {
        return Fail("unknown option \"" + arg + "\" (see --help)");
      }
    }
  }

  if (shard_mode) {
    return RunShardMode(shard_config, replay_path, out_path, minimize);
  }

  if (!replay_path.empty()) {
    Counterexample ce;
    std::string error;
    if (!ReadCounterexampleFile(replay_path, &ce, &error)) {
      return Fail(replay_path + ": " + error);
    }
    std::string observed;
    const bool reproduced = ReplayCounterexample(ce, &observed);
    std::printf("replay of %s (%zu actions, fault %s):\n  recorded  %s\n"
                "  observed  %s\n",
                replay_path.c_str(), ce.actions.size(),
                CheckFaultName(ce.config.fault), ce.property.c_str(),
                observed.c_str());
    if (!reproduced) {
      std::printf("VIOLATION DID NOT REPRODUCE\n");
      return 1;
    }
    std::printf("reproduced\n");
    return 0;
  }

  if (config.chip_model == dmasim::ChipModelKind::kDdr4 &&
      config.policy != CheckPolicy::kDynamicThreshold) {
    return Fail("--chip-model ddr4 requires --policy dynamic-threshold "
                "(the DDR4 cascade has no nap/powerdown states)");
  }

  std::printf(
      "dmasim_check: chips=%d buses=%d k=%d depth=%d arrivals=%d cpu=%d "
      "epochs=%d policy=%s fault=%s chip_model=%s\n",
      config.chips, config.buses, config.k, config.max_depth,
      config.max_arrivals, config.max_cpu_accesses, config.max_epochs,
      CheckPolicyName(config.policy), CheckFaultName(config.fault),
      std::string(dmasim::ChipModelKindName(config.chip_model)).c_str());

  Explorer explorer(config, max_states);
  const ExploreResult result = explorer.Run();
  const ExploreStats& stats = result.stats;
  std::printf(
      "explored %llu states (%llu dedup hits, %llu actions applied)\n"
      "frontier peak %zu, depth reached %d, terminal states %llu, "
      "transitions audited %llu%s\n",
      static_cast<unsigned long long>(stats.states_explored),
      static_cast<unsigned long long>(stats.dedup_hits),
      static_cast<unsigned long long>(stats.actions_applied),
      stats.frontier_peak, stats.depth_reached,
      static_cast<unsigned long long>(stats.terminal_states),
      static_cast<unsigned long long>(stats.transitions_audited),
      stats.truncated ? " [TRUNCATED at --max-states]" : "");

  if (!result.violation.has_value()) {
    std::printf("no violations\n");
    return 0;
  }

  const ViolationTrace& trace = *result.violation;
  std::printf("VIOLATION of %s\n  %s\n  raw trace: %zu actions\n",
              trace.property.c_str(), trace.message.c_str(),
              trace.actions.size());

  std::vector<dmasim::check::Action> actions = trace.actions;
  if (minimize) {
    actions = MinimizeTrace(config, actions, trace.property);
    std::printf("  minimized: %zu actions\n", actions.size());
  }
  for (const auto& action : actions) {
    std::printf("    %s\n", FormatAction(action).c_str());
  }

  if (!out_path.empty()) {
    Counterexample ce;
    ce.config = config;
    ce.property = trace.property;
    ce.message = trace.message;
    ce.actions = actions;
    std::string error;
    if (!WriteCounterexampleFile(ce, out_path, &error)) {
      return Fail(error);
    }
    std::printf("counterexample written to %s\n", out_path.c_str());
  }
  return 1;
}
