// Policy explorer: prints the full energy breakdown of every scheme
// (baseline, DMA-TA, PL alone, DMA-TA-PL) and every low-level policy for a
// chosen workload. Useful for understanding where the energy goes.
//
// Usage: policy_explorer [oltp-st|synthetic-st|oltp-db|synthetic-db] [ms]
#include <cstdlib>
#include <iostream>
#include <string>

#include "server/simulation_driver.h"
#include "stats/table.h"
#include "trace/workloads.h"

namespace {

using namespace dmasim;

void AddBreakdownRow(TablePrinter& table, const std::string& label,
                     const SimulationResults& results,
                     const SimulationResults& baseline) {
  std::vector<std::string> row;
  row.push_back(label);
  const double total = results.energy.Total().joules();
  row.push_back(TablePrinter::Num(total * 1e3, 3));
  for (int bucket = 0; bucket < kEnergyBucketCount; ++bucket) {
    row.push_back(TablePrinter::Percent(
        results.energy.Fraction(static_cast<EnergyBucket>(bucket))));
  }
  row.push_back(TablePrinter::Percent(results.EnergySavingsVs(baseline)));
  row.push_back(TablePrinter::Num(results.utilization_factor, 3));
  row.push_back(TablePrinter::Percent(results.ResponseDegradationVs(baseline)));
  table.AddRow(std::move(row));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dmasim;

  WorkloadSpec spec = OltpStorageSpec();
  if (argc > 1) {
    const std::string name = argv[1];
    if (name == "synthetic-st") spec = SyntheticStorageSpec();
    if (name == "oltp-db") spec = OltpDatabaseSpec();
    if (name == "synthetic-db") spec = SyntheticDatabaseSpec();
  }
  if (argc > 2) spec.duration = std::atoll(argv[2]) * kMillisecond;

  const Trace trace = GenerateWorkload(spec);
  SimulationOptions options;
  options.server.request_compute_time = spec.request_compute_time;

  auto run = [&](const SimulationOptions& opts) {
    return RunTrace(trace, spec.miss_ratio, spec.duration, opts, spec.name);
  };

  const SimulationResults baseline = run(options);
  const CpCalibration calibration = Calibrate(baseline);
  const double mu = calibration.MuFor(0.10);

  SimulationOptions ta = options;
  ta.memory.dma.ta.enabled = true;
  ta.memory.dma.ta.mu = mu;

  SimulationOptions pl = options;
  pl.memory.dma.pl.enabled = true;

  SimulationOptions tapl = ta;
  tapl.memory.dma.pl.enabled = true;

  std::vector<std::string> headers = {"scheme", "total mJ"};
  for (int bucket = 0; bucket < kEnergyBucketCount; ++bucket) {
    headers.emplace_back(EnergyBucketName(static_cast<EnergyBucket>(bucket)));
  }
  headers.emplace_back("savings");
  headers.emplace_back("uf");
  headers.emplace_back("degr");

  TablePrinter table(headers);
  AddBreakdownRow(table, "baseline", baseline, baseline);
  const SimulationResults r_ta = run(ta);
  AddBreakdownRow(table, "DMA-TA", r_ta, baseline);
  const SimulationResults r_pl = run(pl);
  AddBreakdownRow(table, "PL-only", r_pl, baseline);
  const SimulationResults r_tapl = run(tapl);
  AddBreakdownRow(table, "DMA-TA-PL", r_tapl, baseline);
  table.Print(std::cout);

  std::cout << "\nworkload " << spec.name << ", mu(10%) = "
            << TablePrinter::Num(mu, 2)
            << ", gated=" << r_tapl.gated_requests
            << ", rel.quorum=" << r_tapl.releases_by_quorum
            << ", rel.slack=" << r_tapl.releases_by_slack
            << ", migrations=" << r_tapl.controller.migrations
            << ", max gate buffer=" << r_tapl.max_gated_buffer_bytes << "B"
            << ", hottest chip share: baseline="
            << TablePrinter::Percent(baseline.hottest_chip_share)
            << " ta-pl=" << TablePrinter::Percent(r_tapl.hottest_chip_share)
            << "\n";

  // Low-level policy ablation (static vs dynamic, Section 2.2).
  TablePrinter policies({"low-level policy", "total mJ", "savings vs dynamic"});
  for (PolicyKind kind :
       {PolicyKind::kDynamic, PolicyKind::kStaticStandby, PolicyKind::kStaticNap,
        PolicyKind::kStaticPowerdown, PolicyKind::kAlwaysActive}) {
    SimulationOptions opts = options;
    opts.policy = kind;
    const SimulationResults results = run(opts);
    policies.AddRow({PolicyKindName(kind),
                     TablePrinter::Num(results.energy.Total().joules() * 1e3,
                                       3),
                     TablePrinter::Percent(results.EnergySavingsVs(baseline))});
  }
  std::cout << '\n';
  policies.Print(std::cout);
  return 0;
}
