// Trace utility: generate any of the Table 2 workload presets, write it
// to the dmasim text trace format, read it back, and print its summary
// and popularity CDF. Demonstrates the trace I/O path used to feed
// external traces into the simulator.
//
// Usage: trace_tools [oltp-st|synthetic-st|oltp-db|synthetic-db]
//                    [duration_ms] [output_file]
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "stats/table.h"
#include "trace/trace.h"
#include "trace/trace_io.h"
#include "trace/workloads.h"

int main(int argc, char** argv) {
  using namespace dmasim;

  WorkloadSpec spec = OltpStorageSpec();
  if (argc > 1) {
    const std::string name = argv[1];
    if (name == "synthetic-st") spec = SyntheticStorageSpec();
    if (name == "oltp-db") spec = OltpDatabaseSpec();
    if (name == "synthetic-db") spec = SyntheticDatabaseSpec();
  }
  spec.duration = (argc > 2 ? std::atoll(argv[2]) : 100) * kMillisecond;

  const Trace trace = GenerateWorkload(spec);

  // Round-trip through the text format.
  std::stringstream buffer;
  WriteTrace(trace, buffer);
  if (argc > 3) {
    std::ofstream file(argv[3]);
    file << buffer.str();
    std::cout << "wrote " << trace.size() << " records to " << argv[3]
              << "\n";
  }
  Trace parsed;
  std::string error;
  if (!ReadTrace(buffer, &parsed, &error)) {
    std::cerr << "round-trip failed: " << error << "\n";
    return 1;
  }
  if (parsed != trace) {
    std::cerr << "round-trip mismatch\n";
    return 1;
  }

  const TraceSummary summary = Summarize(parsed);
  TablePrinter table({"property", "value"});
  table.AddRow({"workload", spec.name});
  table.AddRow({"records", std::to_string(parsed.size())});
  table.AddRow({"client reads", std::to_string(summary.client_reads)});
  table.AddRow({"client writes", std::to_string(summary.client_writes)});
  table.AddRow({"cpu accesses", std::to_string(summary.cpu_accesses)});
  table.AddRow({"distinct pages", std::to_string(summary.distinct_pages)});
  table.AddRow({"reads/ms", TablePrinter::Num(summary.ReadsPerMs(), 1)});
  table.AddRow(
      {"cpu accesses/ms", TablePrinter::Num(summary.CpuAccessesPerMs(), 0)});
  table.Print(std::cout);

  const auto cdf = PopularityCdf(parsed);
  std::cout << "\npopularity: top 10% of pages -> "
            << TablePrinter::Percent(AccessShareOfTopPages(cdf, 0.10))
            << " of accesses; top 20% -> "
            << TablePrinter::Percent(AccessShareOfTopPages(cdf, 0.20))
            << "\n";
  return 0;
}
