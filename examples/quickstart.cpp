// Quickstart: simulate a storage server for 50 ms under the baseline
// dynamic policy and under DMA-TA-PL, and print the energy comparison.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "server/simulation_driver.h"
#include "stats/table.h"
#include "trace/workloads.h"

int main() {
  using namespace dmasim;

  // 1. Describe the workload: the paper's OLTP storage-server trace
  //    shape, shortened to 50 ms for a quick run.
  WorkloadSpec spec = OltpStorageSpec();
  spec.duration = 50 * kMillisecond;

  // 2. Baseline: dynamic threshold policy only.
  SimulationOptions baseline_options;
  SimulationResults baseline = RunWorkload(spec, baseline_options);

  // 3. Calibrate the DMA-TA slowdown budget from a 10% client-perceived
  //    degradation limit, then enable DMA-TA + PL.
  const CpCalibration calibration = Calibrate(baseline);
  SimulationOptions dma_aware_options = baseline_options;
  dma_aware_options.memory.dma.ta.enabled = true;
  dma_aware_options.memory.dma.ta.mu = calibration.MuFor(0.10);
  dma_aware_options.memory.dma.pl.enabled = true;
  dma_aware_options.memory.dma.pl.groups = 2;
  SimulationResults dma_aware = RunWorkload(spec, dma_aware_options);

  // 4. Report.
  TablePrinter table({"metric", "baseline", "DMA-TA-PL"});
  table.AddRow({"total energy (mJ)",
                TablePrinter::Num(baseline.energy.Total().joules() * 1e3, 3),
                TablePrinter::Num(dma_aware.energy.Total().joules() * 1e3,
                                  3)});
  table.AddRow({"active-idle-DMA energy (mJ)",
                TablePrinter::Num(
                    baseline.energy.Of(EnergyBucket::kActiveIdleDma).joules() *
                        1e3, 3),
                TablePrinter::Num(
                    dma_aware.energy.Of(EnergyBucket::kActiveIdleDma).joules() *
                        1e3, 3)});
  table.AddRow({"utilization factor",
                TablePrinter::Num(baseline.utilization_factor, 3),
                TablePrinter::Num(dma_aware.utilization_factor, 3)});
  table.AddRow(
      {"avg client response (us)",
       TablePrinter::Num(baseline.client_response.Mean() / kMicrosecond, 1),
       TablePrinter::Num(dma_aware.client_response.Mean() / kMicrosecond, 1)});
  table.AddRow({"transfers completed",
                std::to_string(baseline.controller.transfers_completed),
                std::to_string(dma_aware.controller.transfers_completed)});
  table.Print(std::cout);

  std::cout << "\nenergy savings vs baseline: "
            << TablePrinter::Percent(dma_aware.EnergySavingsVs(baseline))
            << "\nresponse-time degradation:  "
            << TablePrinter::Percent(dma_aware.ResponseDegradationVs(baseline))
            << "\n(mu calibrated to " << TablePrinter::Num(dma_aware_options.memory.dma.ta.mu, 2)
            << " from CP-Limit 10%)\n";
  return 0;
}
