// Oracle-vs-monitored popularity evaluation (DAMON-eval style).
//
// Runs the OLTP storage workload three ways: baseline (no power
// management techniques), DMA-TA-PL fed by the oracle per-page
// popularity tracker, and DMA-TA-PL fed by the online region monitor
// (src/mon) with the default hot/cold schemes. Reports energy savings
// and client-perceived degradation for both popularity sources, plus the
// monitor's own cost: simulated overhead fraction, hotness error, and
// region/split/merge statistics. The headline question is how much of
// the oracle's energy saving the online estimate recovers, and at what
// monitoring overhead.
//
// Usage: monitor_eval [duration_ms] [cp_limit]
#include <cstdlib>
#include <iostream>

#include "mon/scheme_parser.h"
#include "server/simulation_driver.h"
#include "stats/table.h"
#include "trace/workloads.h"

int main(int argc, char** argv) {
  using namespace dmasim;

  const Tick duration =
      (argc > 1 ? std::atoll(argv[1]) : 400) * kMillisecond;
  const double cp_limit = argc > 2 ? std::atof(argv[2]) : 0.10;

  WorkloadSpec spec = OltpStorageSpec();
  spec.duration = duration;
  const Trace trace = GenerateWorkload(spec);

  std::cout << "monitor eval: " << duration / kMillisecond << " ms of "
            << spec.name << ", CP-Limit " << cp_limit << "\n\n";

  SimulationOptions options;
  const SimulationResults baseline = RunTrace(
      trace, spec.miss_ratio, spec.duration, options, spec.name);
  const CpCalibration calibration = Calibrate(baseline);

  SimulationOptions oracle_options = options;
  oracle_options.memory.dma.ta.enabled = true;
  oracle_options.memory.dma.ta.mu = calibration.MuFor(cp_limit);
  oracle_options.memory.dma.pl.enabled = true;
  const SimulationResults oracle = RunTrace(
      trace, spec.miss_ratio, spec.duration, oracle_options, spec.name);

  SimulationOptions monitored_options = oracle_options;
  monitored_options.memory.monitor.enabled = true;
  const SchemeParseResult schemes = ParseSchemeString(
      "1 1 8 * 0 migrate-hot\n"
      "64 * 0 1 4 pin-cold\n"
      "* * 0 0 8 demote-chip\n");
  DMASIM_CHECK_MSG(schemes.ok(), schemes.error.c_str());
  monitored_options.memory.monitor.rules = schemes.rules;
  const SimulationResults monitored = RunTrace(
      trace, spec.miss_ratio, spec.duration, monitored_options, spec.name);

  TablePrinter table({"metric", "baseline", "oracle PL", "monitored PL"});
  table.AddRow({"energy (mJ)",
                TablePrinter::Num(baseline.energy.Total().joules() * 1e3, 2),
                TablePrinter::Num(oracle.energy.Total().joules() * 1e3, 2),
                TablePrinter::Num(monitored.energy.Total().joules() * 1e3,
                                  2)});
  table.AddRow({"energy savings", "-",
                TablePrinter::Percent(oracle.EnergySavingsVs(baseline)),
                TablePrinter::Percent(monitored.EnergySavingsVs(baseline))});
  table.AddRow(
      {"response degradation", "-",
       TablePrinter::Percent(oracle.ResponseDegradationVs(baseline)),
       TablePrinter::Percent(monitored.ResponseDegradationVs(baseline))});
  table.AddRow({"utilization factor",
                TablePrinter::Num(baseline.utilization_factor, 3),
                TablePrinter::Num(oracle.utilization_factor, 3),
                TablePrinter::Num(monitored.utilization_factor, 3)});
  table.AddRow({"page migrations", "0",
                std::to_string(oracle.controller.migrations),
                std::to_string(monitored.controller.migrations)});
  table.Print(std::cout);

  const double oracle_savings = oracle.EnergySavingsVs(baseline);
  const double monitored_savings = monitored.EnergySavingsVs(baseline);
  const double recovery =
      oracle_savings > 0.0 ? monitored_savings / oracle_savings : 0.0;

  std::cout << "\nmonitor: " << monitored.monitor.regions << " regions ("
            << monitored.monitor.splits << " splits, "
            << monitored.monitor.merges << " merges over "
            << monitored.monitor.aggregations << " aggregations)\n"
            << "         " << monitored.monitor.probes << " probes, "
            << monitored.monitor.observations << " observations, "
            << monitored.monitor.scheme_matches << " scheme matches, "
            << monitored.monitor.demotions_applied << "/"
            << monitored.monitor.demotions_requested
            << " demotions applied\n"
            << "         overhead "
            << TablePrinter::Percent(monitored.monitor.overhead_fraction)
            << ", hotness error "
            << TablePrinter::Num(monitored.monitor.hotness_error, 3)
            << " (total variation)\n"
            << "recovery: monitored PL keeps "
            << TablePrinter::Percent(recovery)
            << " of the oracle's energy saving\n";
  return 0;
}
